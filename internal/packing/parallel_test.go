package packing

import (
	"math/rand"
	"testing"
)

// TestHomSumParallelMatchesSequential checks that sharded, batched
// ciphertext products decrypt to the same sums as the sequential fold, at
// several parallelism levels and match patterns (all rows, a sparse subset
// producing many partials, a dense subset producing many full packs).
func TestHomSumParallelMatchesSequential(t *testing.T) {
	key := testKey(t)
	l, err := NewLayout([]Col{{Name: "a", Bits: 20}, {Name: "b", Bits: 16}}, 8, key.PlaintextBits(), true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const numRows = 400
	rows := make([][]int64, numRows)
	for i := range rows {
		rows[i] = []int64{rng.Int63n(1 << 20), rng.Int63n(1 << 16)}
	}
	s, err := BuildStore("g", key, l, rows)
	if err != nil {
		t.Fatal(err)
	}

	patterns := map[string][]int{}
	all := make([]int, numRows)
	for i := range all {
		all[i] = i
	}
	patterns["all"] = all
	var sparse, dense []int
	for i := 0; i < numRows; i++ {
		if i%7 == 0 {
			sparse = append(sparse, i)
		}
		if i%97 != 0 {
			dense = append(dense, i)
		}
	}
	patterns["sparse"] = sparse
	patterns["dense"] = dense

	for name, ids := range patterns {
		seq, err := HomSum(s, ids)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		wantSums, _, err := ClientSums(key, l, seq, nil)
		if err != nil {
			t.Fatal(err)
		}
		var expect [2]int64
		for _, id := range ids {
			expect[0] += rows[id][0]
			expect[1] += rows[id][1]
		}
		if wantSums[0] != expect[0] || wantSums[1] != expect[1] {
			t.Fatalf("%s: sequential sums %v, plaintext %v", name, wantSums, expect)
		}
		for _, par := range []int{2, 4, 16} {
			res, err := HomSumParallel(s, ids, par)
			if err != nil {
				t.Fatalf("%s par=%d: %v", name, par, err)
			}
			if res.MulOps != seq.MulOps {
				t.Errorf("%s par=%d: MulOps %d, sequential %d", name, par, res.MulOps, seq.MulOps)
			}
			if res.ReadSize != seq.ReadSize {
				t.Errorf("%s par=%d: ReadSize %d, sequential %d", name, par, res.ReadSize, seq.ReadSize)
			}
			if len(res.Partials) != len(seq.Partials) {
				t.Fatalf("%s par=%d: %d partials, sequential %d", name, par, len(res.Partials), len(seq.Partials))
			}
			sums, _, err := ClientSums(key, l, res, nil)
			if err != nil {
				t.Fatal(err)
			}
			if sums[0] != wantSums[0] || sums[1] != wantSums[1] {
				t.Errorf("%s par=%d: sums %v, want %v", name, par, sums, wantSums)
			}
			// The wire encodings must agree byte for byte: pack visitation
			// order is deterministic and the folded product is identical.
			if string(res.Encode(s.CipherBytes())) != string(seq.Encode(s.CipherBytes())) {
				t.Errorf("%s par=%d: wire encoding diverges from sequential", name, par)
			}
		}
	}
}
