package client

import (
	"testing"
)

// End-to-end streamed-wire tests: the full split-execution path with
// StreamWire on — server framing encrypted batches mid-scan, client
// decrypting them on concurrent workers — must agree with the plaintext
// engine on every scheme (DET, OPE, HOM packing, SEARCH, GROUP_CONCAT
// folds) and plan shape (pushed filters, joins with multiple remote parts,
// grouped aggregation). Run under -race in CI, this is also the thread
//-safety proof for the sharded decryption and pack caches.

// streamWireQueries exercises every decode mode the wire can carry.
var streamWireQueries = []string{
	`SELECT o_id, o_cust FROM orders WHERE o_total > 100`,
	`SELECT o_id FROM orders WHERE o_cust = 'alice'`,
	`SELECT o_cust, SUM(o_total) AS s FROM orders GROUP BY o_cust ORDER BY s DESC`,
	`SELECT o_cust, SUM(i_price * i_qty) AS v
	   FROM orders, items WHERE o_id = i_order GROUP BY o_cust ORDER BY v DESC`,
	`SELECT i_order FROM items WHERE i_tag LIKE '%widget%'`,
	`SELECT SUM(CASE WHEN o_cust = 'alice' THEN o_total ELSE 0 END), SUM(o_total) FROM orders`,
	`SELECT extract(year from o_date) AS y, COUNT(*) FROM orders
	   GROUP BY extract(year from o_date) ORDER BY y`,
	`SELECT o_id, o_total FROM orders ORDER BY o_total DESC LIMIT 3`,
	`SELECT COUNT(*) FROM orders WHERE o_date < date '1996-06-01'`,
}

func TestStreamWireMatchesPlaintext(t *testing.T) {
	f := newFixture(t)
	f.client.StreamWire = true
	for _, p := range []int{1, 4} {
		f.client.Parallelism = p
		for _, bs := range []int{0, 2} {
			f.client.Srv.SetBatchSize(bs)
			for _, sql := range streamWireQueries {
				res := f.checkQuery(t, sql, nil)
				if res.WireBytes <= 0 {
					t.Errorf("p=%d bs=%d %s: no wire bytes accounted", p, bs, sql)
				}
				if res.Plan.Remote != nil && res.TimeToFirstRow <= 0 {
					t.Errorf("p=%d bs=%d %s: TimeToFirstRow not populated", p, bs, sql)
				}
			}
		}
	}
}

// TestStreamWireResultsIdenticalToMaterialized pins the wire protocols
// against each other: same rows, same order, same server charge.
func TestStreamWireResultsIdenticalToMaterialized(t *testing.T) {
	f := newFixture(t)
	f.client.Parallelism = 2
	f.client.Srv.SetBatchSize(2)
	for _, sql := range streamWireQueries {
		f.client.StreamWire = false
		want, err := f.client.Query(sql, nil)
		if err != nil {
			t.Fatalf("materialized %s: %v", sql, err)
		}
		f.client.StreamWire = true
		got, err := f.client.Query(sql, nil)
		if err != nil {
			t.Fatalf("streamed %s: %v", sql, err)
		}
		w := canonicalRows(want.Rows, true)
		g := canonicalRows(got.Rows, true)
		if len(w) != len(g) {
			t.Fatalf("%s: streamed %d rows, materialized %d", sql, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Errorf("%s row %d: streamed %s, materialized %s", sql, i, g[i], w[i])
			}
		}
		// ServerTime equality is asserted at the server layer for scan-only
		// queries; here UDF nanos are measured wall time and legitimately
		// differ between the two executions.
		if got.ServerTime <= 0 {
			t.Errorf("%s: streamed ServerTime not charged", sql)
		}
	}
}
