package client

import (
	"strings"
	"testing"
)

// Multi-round execution tests: uncorrelated scalar subqueries execute as
// their own split plans first, and the outer query re-plans against the
// computed constant (§8.2's "intermediate results several times").

func TestMultiRoundSubstitutionEnablesPushdown(t *testing.T) {
	f := newFixture(t)
	// The scalar subquery's value becomes an OPE-encrypted constant for
	// the outer filter — without multi-round execution the comparison
	// would ship every row to the client.
	res := f.checkQuery(t, `SELECT o_id FROM orders
		WHERE o_total > (SELECT SUM(o_total) / 8 FROM orders) ORDER BY o_id`, nil)
	if !strings.Contains(res.Plan.Remote.Query.SQL(), "o_total_ope") {
		t.Errorf("outer filter should push via OPE after substitution:\n%s", res.Plan.Describe())
	}
}

func TestMultiRoundTimingAccumulates(t *testing.T) {
	f := newFixture(t)
	res, err := f.client.Query(`SELECT o_id FROM orders
		WHERE o_total > (SELECT SUM(o_total) / 8 FROM orders)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two server round trips: the subquery's and the outer query's.
	if res.ServerTime <= 0 || res.WireBytes <= 0 {
		t.Error("multi-round timings must accumulate across rounds")
	}
}

func TestCorrelatedScalarSubqueryStaysLocal(t *testing.T) {
	f := newFixture(t)
	// Correlated subqueries cannot pre-execute; they localize with a
	// sub-fetch and the engine decorrelates at the client.
	res := f.checkQuery(t, `SELECT o_id FROM orders
		WHERE o_total > (SELECT SUM(i_price * i_qty) / 2 FROM items WHERE i_order = o_id)
		ORDER BY o_id`, nil)
	if len(res.Plan.Subplans) == 0 {
		t.Errorf("correlated subquery needs a sub-fetch subplan:\n%s", res.Plan.Describe())
	}
}

func TestAggregatedInSubqueryGetsOwnSplitPlan(t *testing.T) {
	f := newFixture(t)
	// Q18 shape: the uncorrelated aggregated IN-subquery should be planned
	// as an independent query (its own RemoteSQL), not a raw fetch.
	res := f.checkQuery(t, `SELECT o_id FROM orders WHERE o_id IN (
		SELECT i_order FROM items GROUP BY i_order HAVING SUM(i_qty) > 4) ORDER BY o_id`, nil)
	found := false
	for _, sp := range res.Plan.Subplans {
		if sp.Plan.Remote != nil && strings.Contains(sp.Plan.Remote.Query.SQL(), "GROUP BY") {
			found = true
		}
	}
	if !found {
		t.Errorf("IN-subquery should group on the server:\n%s", res.Plan.Describe())
	}
}
