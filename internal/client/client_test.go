package client

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/enc"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/planner"
	"repro/internal/server"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// The integration fixture: a two-table plaintext database, a physical
// design exercising every scheme, and a client/server pair. Every test
// executes a query both on the plaintext engine and through the encrypted
// split-execution path and requires identical results.

func plainCatalog(t testing.TB) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	orders, err := cat.Create(storage.Schema{
		Name: "orders",
		Cols: []storage.Column{
			{Name: "o_id", Type: storage.TInt},
			{Name: "o_cust", Type: storage.TStr},
			{Name: "o_total", Type: storage.TInt},
			{Name: "o_date", Type: storage.TDate},
		},
		Key: []string{"o_id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	day := value.MustParseDate
	type orow struct {
		id    int64
		cust  string
		total int64
		date  string
	}
	orows := []orow{
		{1, "alice", 100, "1995-01-15"},
		{2, "bob", 250, "1995-06-01"},
		{3, "alice", 40, "1996-02-20"},
		{4, "carol", 900, "1996-07-04"},
		{5, "bob", 10, "1997-03-30"},
		{6, "dave", 310, "1995-11-11"},
		{7, "erin", 77, "1996-01-02"},
		{8, "alice", 450, "1997-08-19"},
	}
	for _, r := range orows {
		orders.MustInsert([]value.Value{
			value.NewInt(r.id), value.NewStr(r.cust), value.NewInt(r.total), value.NewDate(day(r.date)),
		})
	}
	items, err := cat.Create(storage.Schema{
		Name: "items",
		Cols: []storage.Column{
			{Name: "i_order", Type: storage.TInt},
			{Name: "i_qty", Type: storage.TInt},
			{Name: "i_price", Type: storage.TInt},
			{Name: "i_tag", Type: storage.TStr},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	type irow struct {
		order, qty, price int64
		tag               string
	}
	irows := []irow{
		{1, 2, 30, "red widget"},
		{1, 1, 40, "green gadget"},
		{2, 5, 50, "red gadget"},
		{3, 1, 40, "blue widget"},
		{4, 10, 90, "green widget"},
		{4, 3, 10, "red trinket"},
		{5, 1, 10, "blue trinket"},
		{6, 7, 44, "green trinket"},
		{7, 2, 33, "blue gadget"},
		{8, 4, 112, "red widget"},
		{8, 1, 9, "green widget"},
	}
	for _, r := range irows {
		items.MustInsert([]value.Value{
			value.NewInt(r.order), value.NewInt(r.qty), value.NewInt(r.price), value.NewStr(r.tag),
		})
	}
	return cat
}

// fixtureDesign builds a rich design: baseline DET everywhere (shared join
// key for o_id/i_order), OPE on numerics and dates, HOM on o_total and the
// precomputed i_price*i_qty, SEARCH on tags, and a DET precomputation of
// extract_year(o_date).
func fixtureDesign(t testing.TB) *enc.Design {
	t.Helper()
	d := &enc.Design{GroupedAddition: true, MultiRowPacking: true}
	addDet := func(table, col string, kind value.Kind, group string) {
		it := enc.ColumnItem(table, col, enc.DET, kind)
		it.JoinGroup = group
		d.Add(it)
	}
	addDet("orders", "o_id", value.Int, "orderkey")
	addDet("orders", "o_cust", value.Str, "")
	addDet("orders", "o_total", value.Int, "")
	addDet("orders", "o_date", value.Date, "")
	addDet("items", "i_order", value.Int, "orderkey")
	addDet("items", "i_qty", value.Int, "")
	addDet("items", "i_price", value.Int, "")
	addDet("items", "i_tag", value.Str, "")

	d.Add(enc.ColumnItem("orders", "o_total", enc.OPE, value.Int))
	d.Add(enc.ColumnItem("orders", "o_date", enc.OPE, value.Date))
	d.Add(enc.ColumnItem("items", "i_qty", enc.OPE, value.Int))
	d.Add(enc.ColumnItem("orders", "o_total", enc.HOM, value.Int))
	d.Add(enc.ColumnItem("items", "i_qty", enc.HOM, value.Int))
	d.Add(enc.ColumnItem("items", "i_tag", enc.SEARCH, value.Str))

	mustExpr := func(src string) ast.Expr {
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	d.Add(enc.ExprItem("items", mustExpr("i_price * i_qty"), enc.HOM, value.Int))
	d.Add(enc.ExprItem("items", mustExpr("i_price * i_qty"), enc.DET, value.Int))
	d.Add(enc.ExprItem("orders", mustExpr("extract(year from o_date)"), enc.DET, value.Int))
	return d
}

type fixture struct {
	cat    *storage.Catalog
	client *Client
	plain  *engine.Engine
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	cat := plainCatalog(t)
	design := fixtureDesign(t)
	ks, err := enc.NewKeyStore([]byte("test-master-key"), 256)
	if err != nil {
		t.Fatal(err)
	}
	db, err := enc.EncryptDatabase(cat, design, ks)
	if err != nil {
		t.Fatal(err)
	}
	cfg := netsim.Default()
	srv := server.New(db, cfg)
	cost := planner.DefaultCostModel(cfg)
	ctx := planner.NewContext(cat, design, ks, cost)
	ctx.JoinGroups["orders.o_id"] = "orderkey"
	ctx.JoinGroups["items.i_order"] = "orderkey"
	return &fixture{
		cat:    cat,
		client: New(ks, srv, ctx, cfg),
		plain:  engine.New(cat),
	}
}

// canonicalRows renders rows order-insensitively unless ordered is true.
func canonicalRows(rows [][]value.Value, ordered bool) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for j, v := range row {
			if v.K == value.Float {
				parts[j] = fmt.Sprintf("%.6f", v.F)
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	if !ordered {
		sort.Strings(out)
	}
	return out
}

// checkQuery runs sql both ways and compares.
func (f *fixture) checkQuery(t *testing.T, sql string, params map[string]value.Value) *Result {
	t.Helper()
	q := sqlparser.MustParse(sql)
	want, err := f.plain.Execute(q, params)
	if err != nil {
		t.Fatalf("plaintext: %v", err)
	}
	got, err := f.client.Query(sql, params)
	if err != nil {
		t.Fatalf("encrypted: %v", err)
	}
	ordered := len(q.OrderBy) > 0
	w := canonicalRows(want.Rows, ordered)
	g := canonicalRows(got.Rows, ordered)
	if len(w) != len(g) {
		t.Fatalf("row count: got %d want %d\nplan:\n%s\ngot: %v\nwant: %v",
			len(g), len(w), got.Plan.Describe(), g, w)
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("row %d:\n got  %s\n want %s\nplan:\n%s", i, g[i], w[i], got.Plan.Describe())
		}
	}
	return got
}

func TestSimpleFetchWithOPEFilter(t *testing.T) {
	f := newFixture(t)
	res := f.checkQuery(t, `SELECT o_id, o_cust FROM orders WHERE o_total > 100`, nil)
	// The OPE filter must have been pushed: only matching rows transfer.
	if res.Plan.Remote == nil {
		t.Fatal("expected remote part")
	}
	if !strings.Contains(res.Plan.Remote.Query.SQL(), "o_total_ope") {
		t.Errorf("filter not pushed via OPE:\n%s", res.Plan.Describe())
	}
}

func TestDetEqualityFilter(t *testing.T) {
	f := newFixture(t)
	res := f.checkQuery(t, `SELECT o_id FROM orders WHERE o_cust = 'alice'`, nil)
	if !strings.Contains(res.Plan.Remote.Query.SQL(), "o_cust_det") {
		t.Errorf("equality not pushed via DET:\n%s", res.Plan.Describe())
	}
}

func TestServerGroupByWithHomSum(t *testing.T) {
	f := newFixture(t)
	// At fixture scale the cost model may legitimately prefer client-side
	// aggregation (the paper's Q18 effect), so force the greedy plan to
	// verify the server-grouped path end to end.
	q := sqlparser.MustParse(`SELECT o_cust, SUM(o_total) AS s FROM orders GROUP BY o_cust ORDER BY s DESC`)
	prepared, err := planner.Prepare(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := f.client.Ctx.Generate(prepared)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Remote.Query.SQL(), "GROUP BY") ||
		!strings.Contains(plan.Remote.Query.SQL(), "paillier_sum") {
		t.Fatalf("greedy plan should push GROUP BY with PAILLIER_SUM:\n%s", plan.Describe())
	}
	got, err := f.client.ExecutePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.plain.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := canonicalRows(want.Rows, true)
	g := canonicalRows(got.Rows, true)
	for i := range w {
		if i >= len(g) || w[i] != g[i] {
			t.Fatalf("row %d mismatch:\ngot  %v\nwant %v\nplan:\n%s", i, g, w, plan.Describe())
		}
	}
	// And the cost-chosen plan must agree too.
	f.checkQuery(t, `SELECT o_cust, SUM(o_total) AS s FROM orders GROUP BY o_cust ORDER BY s DESC`, nil)
}

func TestJoinGroupByAggregate(t *testing.T) {
	f := newFixture(t)
	f.checkQuery(t, `SELECT o_cust, SUM(i_price * i_qty) AS v
		FROM orders, items WHERE o_id = i_order GROUP BY o_cust ORDER BY v DESC`, nil)
}

func TestSearchLike(t *testing.T) {
	f := newFixture(t)
	res := f.checkQuery(t, `SELECT i_order FROM items WHERE i_tag LIKE '%widget%'`, nil)
	if !strings.Contains(res.Plan.Remote.Query.SQL(), "search_match") {
		t.Errorf("LIKE not pushed via SEARCH:\n%s", res.Plan.Describe())
	}
}

func TestExtractYearPrecomputedGroupBy(t *testing.T) {
	f := newFixture(t)
	f.checkQuery(t, `SELECT extract(year from o_date) AS y, COUNT(*) FROM orders
		GROUP BY extract(year from o_date) ORDER BY y`, nil)
}

func TestCaseConditionalSum(t *testing.T) {
	f := newFixture(t)
	f.checkQuery(t, `SELECT SUM(CASE WHEN o_cust = 'alice' THEN o_total ELSE 0 END), SUM(o_total) FROM orders`, nil)
}

func TestHavingWithPrefilterShape(t *testing.T) {
	f := newFixture(t)
	f.checkQuery(t, `SELECT o_cust, SUM(o_total) AS s FROM orders GROUP BY o_cust HAVING SUM(o_total) > 300 ORDER BY s`, nil)
}

func TestScalarSubqueryMultiRound(t *testing.T) {
	f := newFixture(t)
	f.checkQuery(t, `SELECT o_id FROM orders WHERE o_total > (SELECT SUM(o_total) / 10 FROM orders)`, nil)
}

func TestCorrelatedExistsPushed(t *testing.T) {
	f := newFixture(t)
	res := f.checkQuery(t, `SELECT o_id FROM orders WHERE EXISTS (
		SELECT 1 FROM items WHERE i_order = o_id AND i_qty > 4) ORDER BY o_id`, nil)
	if !strings.Contains(res.Plan.Remote.Query.SQL(), "EXISTS") {
		t.Errorf("EXISTS not pushed:\n%s", res.Plan.Describe())
	}
}

func TestNotExistsLocalResidual(t *testing.T) {
	f := newFixture(t)
	// i_price <> 40 has no DET bool precomputation; the <> against a
	// constant uses DET though, so this can push. Use a predicate that
	// cannot push: arithmetic comparison between two columns.
	f.checkQuery(t, `SELECT o_id FROM orders WHERE NOT EXISTS (
		SELECT 1 FROM items WHERE i_order = o_id AND i_price * i_qty > o_total) ORDER BY o_id`, nil)
}

func TestLocalGroupingWithoutPrecomputation(t *testing.T) {
	f := newFixture(t)
	// SUM(i_price + i_qty) has no HOM/DET precomputation: grouping must
	// fall back to the client.
	f.checkQuery(t, `SELECT i_order, SUM(i_price + i_qty) FROM items GROUP BY i_order`, nil)
}

func TestMinMaxViaOPE(t *testing.T) {
	f := newFixture(t)
	f.checkQuery(t, `SELECT o_cust, MIN(o_total), MAX(o_total) FROM orders GROUP BY o_cust`, nil)
}

func TestCountDistinct(t *testing.T) {
	f := newFixture(t)
	f.checkQuery(t, `SELECT COUNT(DISTINCT o_cust) FROM orders`, nil)
}

func TestParamsThroughClient(t *testing.T) {
	f := newFixture(t)
	f.checkQuery(t, `SELECT o_id FROM orders WHERE o_cust = :1`,
		map[string]value.Value{"1": value.NewStr("bob")})
}

func TestInListPushed(t *testing.T) {
	f := newFixture(t)
	f.checkQuery(t, `SELECT o_id FROM orders WHERE o_cust IN ('alice', 'carol') ORDER BY o_id`, nil)
}

func TestBetweenDatesPushed(t *testing.T) {
	f := newFixture(t)
	res := f.checkQuery(t, `SELECT o_id FROM orders WHERE o_date BETWEEN date '1995-01-01' AND date '1995-12-31'`, nil)
	if !strings.Contains(res.Plan.Remote.Query.SQL(), "o_date_ope") {
		t.Errorf("date range not pushed via OPE:\n%s", res.Plan.Describe())
	}
}

func TestDateIntervalFolding(t *testing.T) {
	f := newFixture(t)
	f.checkQuery(t, `SELECT o_id FROM orders WHERE o_date >= date '1995-01-01'
		AND o_date < date '1995-01-01' + interval '1' year`, nil)
}

func TestAvgLowering(t *testing.T) {
	f := newFixture(t)
	f.checkQuery(t, `SELECT o_cust, AVG(o_total) FROM orders GROUP BY o_cust`, nil)
}

func TestOrderByLimit(t *testing.T) {
	f := newFixture(t)
	f.checkQuery(t, `SELECT o_id, o_total FROM orders ORDER BY o_total DESC LIMIT 3`, nil)
}

func TestDerivedTableSubplan(t *testing.T) {
	f := newFixture(t)
	f.checkQuery(t, `SELECT t.c, t.s FROM (SELECT o_cust AS c, SUM(o_total) AS s
		FROM orders GROUP BY o_cust) t WHERE t.s > 200 ORDER BY t.s DESC`, nil)
}

func TestInSubqueryAggregatedLocal(t *testing.T) {
	f := newFixture(t)
	// Q18 shape: IN over an aggregated subquery with HAVING.
	f.checkQuery(t, `SELECT o_id, o_total FROM orders WHERE o_id IN (
		SELECT i_order FROM items GROUP BY i_order HAVING SUM(i_qty) > 4) ORDER BY o_id`, nil)
}

func TestTimingsPopulated(t *testing.T) {
	f := newFixture(t)
	res := f.checkQuery(t, `SELECT o_cust, SUM(o_total) FROM orders GROUP BY o_cust`, nil)
	if res.ServerTime <= 0 || res.TransferTime <= 0 {
		t.Errorf("timings: server=%v transfer=%v", res.ServerTime, res.TransferTime)
	}
	if res.WireBytes <= 0 {
		t.Error("wire bytes should be positive")
	}
}

func TestDecryptCache(t *testing.T) {
	c := newDecryptCache(2)
	c.put("a", value.NewInt(1))
	c.put("b", value.NewInt(2))
	c.put("c", value.NewInt(3)) // evicts one of a/b
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	if v, ok := c.get("c"); !ok || v.AsInt() != 3 {
		t.Error("newest entry must be present")
	}
	// Overwrite existing key does not grow.
	c.put("c", value.NewInt(4))
	if c.Len() != 2 {
		t.Errorf("len after overwrite = %d", c.Len())
	}
	zero := newDecryptCache(0)
	zero.put("x", value.NewInt(1))
	if zero.Len() != 0 {
		t.Error("zero-capacity cache stores nothing")
	}
}
