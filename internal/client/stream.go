package client

// Streamed-wire consumption: the client half of the end-to-end pipeline.
// runRemoteStreamed connects the server's ExecuteStream to a pool of
// decrypt workers through an in-process pipe carrying the framed batch
// protocol of internal/wire: the server frames encrypted batches mid-scan,
// a reader goroutine decodes frames as they arrive, Options.Parallelism
// workers decrypt batches concurrently (the decryption cache and the pack
// plaintext cache are sharded-mutex safe), and the main loop merges
// decrypted batches strictly in batch order into the temp table — so rows,
// row order, and encodings are byte-identical to the materialized wire.
// The server side of the stream may now be produced by its own worker pool
// (the engine's sharded single-stream production): the protocol is
// unchanged and batch order is still authoritative, but batches can arrive
// at a burstier cadence — another reason the decode pool pulls from a
// buffered frame queue rather than pacing itself on the wire.
//
// Error/abandon handling is symmetric: a server error poisons the pipe and
// surfaces at the reader; a client-side decode error closes the pipe,
// which aborts the server's scan mid-stream. Either way every goroutine is
// joined before returning.
//
// Accounting: ServerTime is the server's time-to-last-batch, TransferTime
// charges the framed bytes on the simulated link, and ClientTime sums the
// workers' measured decode time (the CPU the client actually spent, the
// quantity the paper's cost model tracks — wall-clock overlap is the point
// of the pipeline). Decrypts may differ slightly from the materialized
// wire: concurrent workers can race to decrypt the same repeated
// ciphertext before one of them has cached it. The decrypted values are
// identical either way.

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/planner"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

// parallelism resolves the client-side worker knob (< 1 = GOMAXPROCS).
func (c *Client) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// decodedBatch is one batch after decryption, or the error that stopped it.
type decodedBatch struct {
	rows [][]value.Value
	err  error
}

// decodeJob pairs an encrypted batch with the promise its decoded form is
// delivered on.
type decodeJob struct {
	rows [][]value.Value
	out  chan decodedBatch
}

// runRemoteStreamed executes one RemoteSQL over the streamed wire. On the
// template fast path (ec != nil) the part's encrypted parameter bindings
// ride along, and a statement-capable executor streams via the part's
// server-side prepared statement.
func (c *Client) runRemoteStreamed(part *planner.RemotePart, cat *storage.Catalog, res *Result, ec *execCtx) error {
	q := c.resolveHomGroups(part.Query)
	pr, pw := io.Pipe()

	// Producer: the untrusted server frames batches into the pipe as its
	// scan proceeds.
	var sstats *server.StreamStats
	var srvErr error
	srvDone := make(chan struct{})
	go func() {
		defer close(srvDone)
		if se, id, ok := c.stmtFor(part, q, ec); ok {
			sstats, srvErr = se.ExecuteStmtStream(id, ec.encParams(), pw)
			if srvErr != nil {
				// Stale handle or query failure: forget the handle; the
				// error surfaces to the caller, and the next execution
				// re-registers or reports the real failure.
				c.dropStmt(part, ec)
			}
		} else {
			sstats, srvErr = c.exec.ExecuteStream(q, ec.encParams(), pw)
		}
		pw.CloseWithError(srvErr) // nil = clean EOF after the end frame
	}()

	fail := func(err error) error {
		pr.CloseWithError(err)
		<-srvDone
		if srvErr != nil {
			err = srvErr
		}
		return fmt.Errorf("client: remote %s: %w", part.Name, err)
	}

	br, err := wire.NewBatchReader(pr)
	if err != nil {
		return fail(err)
	}
	if len(br.Cols()) != len(part.Outputs) {
		return fail(fmt.Errorf("stream has %d columns, plan expects %d",
			len(br.Cols()), len(part.Outputs)))
	}

	// Decrypt workers: each decodes whole batches on a private scratch
	// Result (the caches underneath are concurrency-safe) and fulfills the
	// batch's promise; summed counters merge after the join.
	workers := c.parallelism()
	jobs := make(chan decodeJob, workers)
	ordered := make(chan chan decodedBatch, 2*workers)
	var decrypts, decodeNanos int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := &Result{}
			for j := range jobs {
				t0 := time.Now()
				rows, err := c.decodeBatch(part, j.rows, scratch)
				atomic.AddInt64(&decodeNanos, time.Since(t0).Nanoseconds())
				j.out <- decodedBatch{rows: rows, err: err}
			}
			atomic.AddInt64(&decrypts, scratch.Decrypts)
		}()
	}

	// Reader: pulls frames off the wire in arrival order, queueing each
	// batch's promise so the merge below sees batch order regardless of
	// which worker finishes first. firstBatchAt marks the wall moment the
	// first encrypted batch left the wire — the client-side decode clock
	// for TimeToFirstRow starts there, not at query start, so the (real,
	// in-process) server execution isn't counted twice on top of its
	// simulated charge.
	var firstFrameBytes int64
	var firstBatchAt time.Time
	readErr := make(chan error, 1)
	go func() {
		defer close(jobs)
		defer close(ordered)
		for {
			rows, err := br.Next()
			if err != nil {
				readErr <- err
				return
			}
			if rows == nil {
				readErr <- nil
				return
			}
			if firstFrameBytes == 0 {
				firstFrameBytes = br.BytesRead() // header + first batch frame
				firstBatchAt = time.Now()
			}
			ch := make(chan decodedBatch, 1)
			ordered <- ch
			jobs <- decodeJob{rows: rows, out: ch}
		}
	}()

	// Merge: insert decoded batches in batch order. On a decode error,
	// poison the pipe (aborting the server scan) but keep draining so the
	// reader and every worker exit before we return.
	tbl := storage.NewTable(remoteSchema(part))
	var decodeErr error
	var firstRowWall time.Duration
	inserted := 0
	for ch := range ordered {
		d := <-ch
		if decodeErr != nil {
			continue
		}
		if d.err != nil {
			decodeErr = d.err
			pr.CloseWithError(d.err)
			continue
		}
		if inserted == 0 && len(d.rows) > 0 {
			firstRowWall = time.Since(firstBatchAt)
		}
		for _, row := range d.rows {
			tbl.MustInsert(row)
		}
		inserted += len(d.rows)
	}
	wg.Wait()
	rerr := <-readErr
	<-srvDone

	if decodeErr != nil {
		return fmt.Errorf("client: remote %s: %w", part.Name, decodeErr)
	}
	if srvErr != nil {
		return fmt.Errorf("client: remote %s: %w", part.Name, srvErr)
	}
	if rerr != nil {
		return fmt.Errorf("client: remote %s: %w", part.Name, rerr)
	}

	res.ServerTime += sstats.ServerTime
	res.TransferTime += c.Cfg.TransferTime(sstats.WireBytes)
	res.WireBytes += sstats.WireBytes
	res.ClientTime += time.Duration(decodeNanos)
	res.Decrypts += decrypts
	if res.TimeToFirstRow == 0 {
		res.TimeToFirstRow = sstats.TimeToFirstBatch +
			c.Cfg.TransferTime(firstFrameBytes) + firstRowWall
	}
	cat.Put(tbl)
	return nil
}

// decodeBatch converts one encrypted batch into plaintext rows, counting
// decryptions on the worker's scratch Result.
func (c *Client) decodeBatch(part *planner.RemotePart, rows [][]value.Value, scratch *Result) ([][]value.Value, error) {
	out := make([][]value.Value, len(rows))
	for i, row := range rows {
		vals := make([]value.Value, len(part.Outputs))
		for j := range part.Outputs {
			v, err := c.decodeOutput(&part.Outputs[j], row[j], scratch)
			if err != nil {
				return nil, fmt.Errorf("output %s: %w", part.Outputs[j].Name, err)
			}
			vals[j] = v
		}
		out[i] = vals
	}
	return out, nil
}
