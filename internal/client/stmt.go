package client

// Prepared statements, client side. A Stmt pins one parsed query AST; each
// Execute routes through the plan cache, so the first execution of a
// parameter-kind combination plans and caches a template, and later ones
// rebind only. When the executor is a transport connection, each cached
// plan additionally registers its RemoteSQL server-side once (PREPARE
// frame) and re-executes it by statement id with only fresh encrypted
// parameters on the wire; those handles belong to the plan-cache entry and
// close when it evicts or the client closes.

import (
	"repro/internal/ast"
	"repro/internal/value"
)

// Stmt is a prepared statement: a parsed query executed repeatedly with
// different parameters.
type Stmt struct {
	c   *Client
	q   *ast.Query
	sql string
}

// Prepare parses a SQL query once for repeated execution.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	q, err := c.parse(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, q: q, sql: sql}, nil
}

// SQL returns the statement's source text.
func (s *Stmt) SQL() string { return s.sql }

// Execute runs the statement with one set of parameter values.
func (s *Stmt) Execute(params map[string]value.Value) (*Result, error) {
	return s.c.Execute(s.q, params)
}

// Close releases the statement. Plans and server-side handles belong to
// the client's plan cache (shared across statements with the same shape),
// so there is nothing statement-local to free; Close exists for driver-
// style symmetry.
func (s *Stmt) Close() error { return nil }
