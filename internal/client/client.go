// Package client implements MONOMI's trusted client library (the "MONOMI
// library / client ODBC driver" of Figure 1): the only component holding
// decryption keys. It plans each query with the runtime planner, sends
// RemoteSQL to the untrusted server, decrypts the intermediate results
// (with the paper's 512-entry decryption cache), executes the residual
// local operators with the embedded engine, and returns plaintext rows as
// if the application had queried an ordinary SQL database.
package client

import (
	"fmt"
	"io"
	"time"

	"repro/internal/ast"
	"repro/internal/enc"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/packing"
	"repro/internal/planner"
	"repro/internal/server"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

// Executor is where RemoteSQL runs: the in-process *server.Server, or a
// transport connection dialed to a remote monomi-server (which speaks the
// same two calls over the socket). The client is agnostic — it plans,
// ships RemoteSQL to whichever executor it holds, and decrypts what comes
// back; the streamed call writes the identical framed batch protocol to w
// in both deployments.
type Executor interface {
	Execute(q *ast.Query, params map[string]value.Value) (*server.Response, error)
	ExecuteStream(q *ast.Query, params map[string]value.Value, w io.Writer) (*server.StreamStats, error)
}

// StmtExecutor is the optional prepared-statement extension of Executor: a
// transport connection that can register a RemoteSQL once server-side and
// re-execute it with only fresh parameters on the wire. The in-process
// server doesn't bother (there is no wire to save); the client probes with
// a type assertion and falls back to Execute.
type StmtExecutor interface {
	PrepareStmt(q *ast.Query) (uint64, error)
	ExecuteStmt(id uint64, params map[string]value.Value) (*server.Response, error)
	ExecuteStmtStream(id uint64, params map[string]value.Value, w io.Writer) (*server.StreamStats, error)
	CloseStmt(id uint64) error
}

// Client is a connection to one encrypted database.
type Client struct {
	Keys *enc.KeyStore
	// Srv is the in-process server when the deployment is in-process
	// (nil in remote mode — use the Executor and Meta instead).
	Srv *server.Server
	Ctx *planner.Context
	Cfg netsim.Config
	// Greedy disables the cost-based planner: every query uses the greedy
	// plan that pushes all available computation to the server (the
	// Execution-Greedy configuration of §8.3).
	Greedy bool
	// Parallelism is the worker count for the local engines that run the
	// plan's residual operators over decrypted temp tables, and for the
	// streamed wire's batch-decryption workers; values < 1 mean GOMAXPROCS,
	// 1 forces sequential execution.
	Parallelism int
	// BatchSize > 0 streams eligible local queries batch-at-a-time through
	// those engines (0 = materialized); it mirrors the server-side knob.
	BatchSize int
	// StreamWire switches remote execution to the streamed wire protocol:
	// the server frames encrypted batches mid-scan and the client decodes
	// each arriving batch on a pool of Parallelism decrypt workers, merging
	// decrypted rows in batch order — results are byte-identical to the
	// materialized wire, but the first plaintext row exists long before the
	// server's scan completes (Result.TimeToFirstRow).
	StreamWire bool
	// ParseHook, when set, is called once per SQL string the client
	// actually hands to the parser — parse-cache hits skip it. Tests use it
	// to assert repeated queries parse once.
	ParseHook func(sql string)

	exec      Executor
	meta      map[string]*enc.TableMeta
	cache     *decryptCache
	packCache *packing.PlainCache
	plans     *planCache
	parsed    *parseCache
}

// New creates a client over an in-process server. ctx must be built over
// the plaintext schema with the same design the server's database was
// encrypted under.
func New(keys *enc.KeyStore, srv *server.Server, ctx *planner.Context, cfg netsim.Config) *Client {
	c := &Client{
		Keys: keys, Srv: srv, Ctx: ctx, Cfg: cfg,
		exec:      srv,
		meta:      srv.DB.Meta,
		cache:     newDecryptCache(512),
		packCache: packing.NewPlainCache(),
		plans:     newPlanCache(defaultPlanCacheCap),
		parsed:    newParseCache(defaultParseCacheCap),
	}
	c.plans.onEvict = c.releaseStmts
	return c
}

// NewRemote creates a client whose RemoteSQL runs on a remote server
// through exec (a dialed transport connection). meta is the encrypted
// design's per-table metadata — a trusted-side artifact of the Encrypt
// run, which the remote deployment re-derives from the same master key,
// schema, and workload; the client needs it to resolve Paillier
// ciphertext-group names and pack layouts. Everything else — planning,
// decryption, residual execution — is identical to the in-process client.
func NewRemote(keys *enc.KeyStore, exec Executor, meta map[string]*enc.TableMeta, ctx *planner.Context, cfg netsim.Config) *Client {
	c := &Client{
		Keys: keys, Ctx: ctx, Cfg: cfg,
		exec:      exec,
		meta:      meta,
		cache:     newDecryptCache(512),
		packCache: packing.NewPlainCache(),
		plans:     newPlanCache(defaultPlanCacheCap),
		parsed:    newParseCache(defaultParseCacheCap),
	}
	c.plans.onEvict = c.releaseStmts
	return c
}

// SetExecutor redirects RemoteSQL execution (tests use it to interpose
// frame recorders; ConnectRemote-style deployments use NewRemote instead).
func (c *Client) SetExecutor(e Executor) { c.exec = e }

// Executor returns the client's current RemoteSQL executor.
func (c *Client) Executor() Executor { return c.exec }

// Result is a fully executed query result with its simulated timings.
type Result struct {
	Cols []string
	Rows [][]value.Value

	Plan *planner.Plan
	// PlanCacheHit reports that this execution reused a cached plan
	// template (rebind + run, no planning).
	PlanCacheHit bool
	ServerTime   time.Duration // simulated server I/O + CPU (incl. UDFs)
	TransferTime time.Duration // simulated 10 Mbit/s link
	ClientTime   time.Duration // measured decrypt + local execution
	WireBytes    int64
	Decrypts     int64 // individual decryption operations performed
	// TimeToFirstRow is when the first decrypted row of the first remote
	// result became available at the client: simulated server time to the
	// first batch + simulated transfer of its frame + measured decode time.
	// On the materialized wire the whole result precedes the first row, so
	// it degenerates to server + transfer + first decode pass; the streamed
	// wire's headline win is this number dropping from O(scan) to O(batch).
	TimeToFirstRow time.Duration
}

// Total is the end-to-end simulated latency.
func (r *Result) Total() time.Duration { return r.ServerTime + r.TransferTime + r.ClientTime }

// Query parses, plans, and executes a SQL query with parameters. Parsed
// ASTs are cached by SQL string, so a repeated query string reaches the
// parser once (the cached AST is treated as read-only — every downstream
// pass clones before mutating).
func (c *Client) Query(sql string, params map[string]value.Value) (*Result, error) {
	q, err := c.parse(sql)
	if err != nil {
		return nil, err
	}
	return c.Execute(q, params)
}

// parse resolves SQL through the parse cache.
func (c *Client) parse(sql string) (*ast.Query, error) {
	if q, ok := c.parsed.get(sql); ok {
		return q, nil
	}
	if c.ParseHook != nil {
		c.ParseHook(sql)
	}
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	c.parsed.put(sql, q)
	return q, nil
}

// Execute plans and runs a query AST, going through the plan cache: the
// query is normalized to its shape (literals hoisted to parameter slots)
// and a cached template for that shape executes by re-encrypting the
// parameters alone (see fastpath.go).
func (c *Client) Execute(q *ast.Query, params map[string]value.Value) (*Result, error) {
	if key, shape, vals, ok := c.shapeKey(q, params); ok {
		return c.executeKeyed(key, shape, vals)
	}
	return c.executeCold(q, params)
}

// executeCold plans and runs a query from scratch, bypassing the plan
// cache (the pre-fast-path Execute).
func (c *Client) executeCold(q *ast.Query, params map[string]value.Value) (*Result, error) {
	prepared, err := planner.Prepare(q, params)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	// Multi-round execution: compute uncorrelated scalar subqueries first
	// and substitute their values, so comparisons against them can use
	// encrypted server-side filters (§8.2: plans may ship intermediate
	// results between client and server several times).
	if _, err := c.preExecuteScalarSubqueries(prepared, res); err != nil {
		return nil, err
	}
	plan, err := c.makePlan(prepared)
	if err != nil {
		return nil, err
	}
	res.Plan = plan
	cat := storage.NewCatalog()
	if err := c.runPlan(plan, cat, res, nil); err != nil {
		return nil, err
	}
	return c.finishPlan(plan, cat, res, nil)
}

// makePlan generates the plan for a prepared query under the client's
// planner mode.
func (c *Client) makePlan(prepared *ast.Query) (*planner.Plan, error) {
	if c.Greedy {
		plan, err := c.Ctx.Generate(prepared)
		if err != nil {
			return nil, err
		}
		c.Ctx.CostPlan(plan)
		return plan, nil
	}
	return c.Ctx.BestPlan(prepared)
}

// ExecutePlan runs an already-generated plan (used by the experiment
// harness to execute a specific configuration's plan).
func (c *Client) ExecutePlan(plan *planner.Plan) (*Result, error) {
	res := &Result{Plan: plan}
	cat := storage.NewCatalog()
	if err := c.runPlan(plan, cat, res, nil); err != nil {
		return nil, err
	}
	return c.finishPlan(plan, cat, res, nil)
}

// PlanCacheStats snapshots the plan cache's hit/miss/eviction counters.
func (c *Client) PlanCacheStats() PlanCacheStats { return c.plans.stats() }

// Close releases client-held server resources: remote prepared-statement
// handles acquired by cached plans. The client remains usable (caches
// refill on demand).
func (c *Client) Close() error {
	c.plans.purge()
	return nil
}

// ResetPlanCache drops every cached plan (closing any remote prepared-
// statement handles) and the parse cache, forcing subsequent executions
// down the cold path. Benchmarks use it to measure cold planning cost;
// counters are not reset.
func (c *Client) ResetPlanCache() {
	c.plans.purge()
	c.parsed.clear()
}

// finishPlan executes the plan's final local query. ec carries the
// execution's parameter bindings on the template fast path (nil = cold
// path, literals are inline).
func (c *Client) finishPlan(plan *planner.Plan, cat *storage.Catalog, res *Result, ec *execCtx) (*Result, error) {
	if plan.Local == nil {
		t, err := cat.Table(plan.Remote.Name)
		if err != nil {
			return nil, err
		}
		for _, col := range t.Schema.Cols {
			res.Cols = append(res.Cols, col.Name)
		}
		rows, _, err := t.ScanRows(0, t.NumRows())
		if err != nil {
			return nil, err
		}
		res.Rows = rows
		return res, nil
	}
	start := time.Now()
	eng := engine.New(cat)
	eng.Parallelism = c.Parallelism
	eng.BatchSize = c.BatchSize
	out, err := eng.Execute(plan.Local, ec.localParams())
	if err != nil {
		return nil, fmt.Errorf("client: local query: %w", err)
	}
	res.ClientTime += time.Since(start)
	res.Cols = out.Cols
	res.Rows = out.Rows
	return res, nil
}

// runPlan executes subplans and the remote part, materializing temp tables.
func (c *Client) runPlan(plan *planner.Plan, cat *storage.Catalog, res *Result, ec *execCtx) error {
	for _, sp := range plan.Subplans {
		if err := c.runPlan(sp.Plan, cat, res, ec); err != nil {
			return err
		}
		// A subplan with a local query materializes under its own name.
		if sp.Plan.Local != nil {
			sub := &Result{}
			r, err := c.finishPlan(sp.Plan, cat, sub, ec)
			if err != nil {
				return err
			}
			res.ClientTime += sub.ClientTime
			tbl := storage.NewTable(resultSchema(sp.Name, r.Cols, r.Rows))
			for _, row := range r.Rows {
				tbl.MustInsert(row)
			}
			cat.Put(tbl)
		} else if sp.Plan.Remote != nil && sp.Plan.Remote.Name != sp.Name {
			// Rename the remote temp to the subplan's name.
			t, err := cat.Table(sp.Plan.Remote.Name)
			if err != nil {
				return err
			}
			t.Schema.Name = sp.Name
			cat.Drop(sp.Plan.Remote.Name)
			cat.Put(t)
		}
	}
	if plan.Remote == nil {
		return nil
	}
	return c.runRemote(plan.Remote, cat, res, ec)
}

// runRemote sends one RemoteSQL to the server and decrypts its output into
// a temp table — over the streamed wire (concurrent per-batch decryption
// overlapping the server's scan) when StreamWire is set, else over the
// materialized wire.
func (c *Client) runRemote(part *planner.RemotePart, cat *storage.Catalog, res *Result, ec *execCtx) error {
	if c.StreamWire {
		return c.runRemoteStreamed(part, cat, res, ec)
	}
	q := c.resolveHomGroups(part.Query)
	resp, err := c.execRemote(part, q, ec)
	if err != nil {
		return fmt.Errorf("client: remote %s: %w", part.Name, err)
	}
	res.ServerTime += resp.ServerTime
	res.TransferTime += c.Cfg.TransferTime(resp.WireBytes)
	res.WireBytes += resp.WireBytes

	if len(resp.Result.Cols) != len(part.Outputs) {
		return fmt.Errorf("client: remote %s returned %d columns, plan expects %d",
			part.Name, len(resp.Result.Cols), len(part.Outputs))
	}

	start := time.Now()
	schema := remoteSchema(part)
	tbl := storage.NewTable(schema)
	for _, row := range resp.Result.Rows {
		out := make([]value.Value, len(part.Outputs))
		for i := range part.Outputs {
			v, err := c.decodeOutput(&part.Outputs[i], row[i], res)
			if err != nil {
				return fmt.Errorf("client: output %s: %w", part.Outputs[i].Name, err)
			}
			out[i] = v
		}
		tbl.MustInsert(out)
	}
	res.ClientTime += time.Since(start)
	if res.TimeToFirstRow == 0 {
		// Materialized wire: nothing is visible before everything arrived
		// and the decode pass ran.
		res.TimeToFirstRow = resp.ServerTime + c.Cfg.TransferTime(resp.WireBytes) + time.Since(start)
	}
	cat.Put(tbl)
	return nil
}

// remoteSchema builds the temp-table schema for one remote part.
func remoteSchema(part *planner.RemotePart) storage.Schema {
	schema := storage.Schema{Name: part.Name}
	for _, o := range part.Outputs {
		schema.Cols = append(schema.Cols, storage.Column{Name: o.Name, Type: kindToColType(o.Kind)})
	}
	return schema
}

// decodeOutput converts one server value into its plaintext form.
func (c *Client) decodeOutput(o *planner.Output, v value.Value, res *Result) (value.Value, error) {
	switch o.Mode {
	case planner.OutPlain:
		return v, nil
	case planner.OutDecrypt:
		return c.cachedDecrypt(o.Item, v, res)
	case planner.OutConcatAgg:
		if v.IsNull() {
			return value.NewNull(), nil
		}
		vals, err := wire.DecodeAll(v.B)
		if err != nil {
			return value.Value{}, err
		}
		return c.foldConcat(o, vals, res)
	case planner.OutHomSum:
		return c.decodeHomSum(o, v, res)
	}
	return value.Value{}, fmt.Errorf("unknown output mode %v", o.Mode)
}

// foldConcat decrypts each GROUP_CONCAT element and folds with o.Agg.
func (c *Client) foldConcat(o *planner.Output, vals []value.Value, res *Result) (value.Value, error) {
	var acc value.Value
	count := 0
	for _, cv := range vals {
		if cv.IsNull() {
			continue
		}
		pv, err := c.cachedDecrypt(o.Item, cv, res)
		if err != nil {
			return value.Value{}, err
		}
		if count == 0 {
			acc = pv
		} else {
			switch o.Agg {
			case ast.AggSum:
				acc = value.Add(acc, pv)
			case ast.AggMin:
				if value.Compare(pv, acc) < 0 {
					acc = pv
				}
			case ast.AggMax:
				if value.Compare(pv, acc) > 0 {
					acc = pv
				}
			case ast.AggCount:
				// handled by count below
			}
		}
		count++
	}
	if o.Agg == ast.AggCount {
		return value.NewInt(int64(count)), nil
	}
	if count == 0 {
		// Conditional sums concat NULL for non-matching rows; if any rows
		// arrived at all, SUM(CASE ... ELSE 0) is 0, not NULL.
		if o.Agg == ast.AggSum && len(vals) > 0 {
			return value.NewInt(0), nil
		}
		return value.NewNull(), nil
	}
	return acc, nil
}

// decodeHomSum finishes grouped homomorphic addition for one group.
func (c *Client) decodeHomSum(o *planner.Output, v value.Value, res *Result) (value.Value, error) {
	if v.IsNull() {
		return value.NewNull(), nil
	}
	meta, ok := c.meta[o.HomTable]
	if !ok {
		return value.Value{}, fmt.Errorf("no encrypted table metadata for %s", o.HomTable)
	}
	group, slot := meta.FindGroupColumn(homItemColumnName(o))
	if group == nil {
		return value.Value{}, fmt.Errorf("no ciphertext group packs %s on %s", o.HomExpr, o.HomTable)
	}
	pk := c.Keys.Paillier()
	sum, err := packing.DecodeSumResult(v.B, pk.CiphertextSize())
	if err != nil {
		return value.Value{}, err
	}
	if sum.Product == nil && len(sum.Partials) == 0 {
		if sum.SawRows {
			// Rows existed but none matched a conditional sum: 0.
			return value.NewInt(0), nil
		}
		// SQL SUM over an empty relation is NULL.
		return value.NewNull(), nil
	}
	sums, decrypts, err := packing.ClientSums(pk, group.Layout, sum, c.packCache)
	if err != nil {
		return value.Value{}, err
	}
	res.Decrypts += int64(decrypts)
	return value.NewInt(sums[slot]), nil
}

// homItemColumnName renders the encrypted column name the group metadata
// indexes HOM items by.
func homItemColumnName(o *planner.Output) string { return o.HomExpr }

// resolveHomGroups replaces @hom: placeholders in PAILLIER_SUM calls with
// the actual ciphertext-group names from the encrypted DB's metadata.
func (c *Client) resolveHomGroups(q *ast.Query) *ast.Query {
	out := q.Clone()
	var fix func(e ast.Expr) ast.Expr
	fix = func(e ast.Expr) ast.Expr {
		return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
			f, ok := x.(*ast.FuncCall)
			if !ok || f.Name != "paillier_sum" || len(f.Args) != 2 {
				return nil
			}
			lit, ok := f.Args[0].(*ast.Literal)
			if !ok || lit.Val.K != value.Str {
				return nil
			}
			table, exprSQL, ok := planner.ParseHomPlaceholder(lit.Val.S)
			if !ok {
				return nil
			}
			meta, ok := c.meta[table]
			if !ok {
				return nil
			}
			group, _ := meta.FindGroupColumn(exprSQL)
			if group == nil {
				return nil
			}
			return &ast.FuncCall{Name: "paillier_sum", Args: []ast.Expr{
				&ast.Literal{Val: value.NewStr(group.Name)}, f.Args[1],
			}}
		})
	}
	for i := range out.Projections {
		out.Projections[i].Expr = fix(out.Projections[i].Expr)
	}
	if out.Having != nil {
		out.Having = fix(out.Having)
	}
	return out
}

// cachedDecrypt decrypts one value through the decryption cache (512
// entries, random eviction, §8.1).
func (c *Client) cachedDecrypt(it *enc.Item, v value.Value, res *Result) (value.Value, error) {
	if v.IsNull() {
		return value.NewNull(), nil
	}
	key := it.KeyLabel() + "\x00" + v.HashKey()
	if pv, ok := c.cache.get(key); ok {
		return pv, nil
	}
	pv, err := c.Keys.DecryptValue(it, v)
	if err != nil {
		return value.Value{}, err
	}
	res.Decrypts++
	c.cache.put(key, pv)
	return pv, nil
}

// preExecuteScalarSubqueries finds comparisons against uncorrelated scalar
// subqueries in WHERE/HAVING and replaces each subquery with its computed
// value (executed through the full split machinery). It reports whether it
// substituted anything — a substituted value is data-dependent, so the
// resulting plan must not be cached for the query's shape.
func (c *Client) preExecuteScalarSubqueries(q *ast.Query, res *Result) (bool, error) {
	changed := false
	replace := func(e ast.Expr) (ast.Expr, error) {
		var firstErr error
		out := ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
			if firstErr != nil {
				return nil
			}
			b, ok := x.(*ast.BinaryExpr)
			if !ok || !b.Op.IsComparison() {
				return nil
			}
			rewriteSide := func(side ast.Expr) ast.Expr {
				sq, ok := side.(*ast.SubqueryExpr)
				if !ok || !c.isUncorrelated(sq.Sub) {
					return side
				}
				sub, err := c.Execute(sq.Sub, nil)
				if err != nil {
					firstErr = err
					return side
				}
				res.ServerTime += sub.ServerTime
				res.TransferTime += sub.TransferTime
				res.ClientTime += sub.ClientTime
				res.WireBytes += sub.WireBytes
				res.Decrypts += sub.Decrypts
				if len(sub.Rows) == 0 {
					return &ast.Literal{Val: value.NewNull()}
				}
				return &ast.Literal{Val: sub.Rows[0][0]}
			}
			l := rewriteSide(b.Left)
			r := rewriteSide(b.Right)
			if l != b.Left || r != b.Right {
				changed = true
				return &ast.BinaryExpr{Op: b.Op, Left: l, Right: r}
			}
			return nil
		})
		return out, firstErr
	}
	var err error
	if q.Where != nil {
		q.Where, err = replace(q.Where)
		if err != nil {
			return changed, err
		}
	}
	if q.Having != nil {
		q.Having, err = replace(q.Having)
		if err != nil {
			return changed, err
		}
	}
	return changed, nil
}

// isUncorrelated reports whether the subquery references only its own
// tables.
func (c *Client) isUncorrelated(sub *ast.Query) bool {
	return planner.IsUncorrelated(c.Ctx, sub)
}

// resultSchema derives a temp-table schema from a local result.
func resultSchema(name string, cols []string, rows [][]value.Value) storage.Schema {
	s := storage.Schema{Name: name}
	for i, cname := range cols {
		t := storage.TInt
		for _, row := range rows {
			if !row[i].IsNull() {
				t = kindToColType(row[i].K)
				break
			}
		}
		s.Cols = append(s.Cols, storage.Column{Name: cname, Type: t})
	}
	return s
}

func kindToColType(k value.Kind) storage.ColType {
	switch k {
	case value.Int, value.Bool:
		return storage.TInt
	case value.Float:
		return storage.TFloat
	case value.Str:
		return storage.TStr
	case value.Date:
		return storage.TDate
	case value.Bytes:
		return storage.TBytes
	}
	return storage.TInt
}
