package client

// The plan cache backs the repeated-query fast path: plans are cached per
// query *shape* (SQL with every literal hoisted into a parameter slot, plus
// the parameter kinds, plus the planner mode), so the second execution of a
// shape skips parse/prepare/rewrite/costing entirely and only re-encrypts
// parameters. Entries fill under a single-flight protocol — when N
// goroutines miss the same key simultaneously, one plans and the rest wait
// for its template — and evict LRU under capacity pressure. A shape that
// planning proves untemplatable (see planner.Parameterize) is cached
// negatively so later executions skip the parameterization attempt and go
// straight to a full plan.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/planner"
)

// PlanCacheStats is a point-in-time snapshot of the plan cache's counters.
type PlanCacheStats struct {
	Hits      int64 // executions served from a cached template
	Misses    int64 // executions that had to plan (incl. uncacheable shapes)
	Evictions int64 // entries dropped under capacity pressure
	Size      int   // entries currently cached (incl. negative entries)
}

// cachedPlan is one filled cache entry: the reusable template (nil for a
// negative entry — shape known uncacheable) plus any server-side prepared
// statement handles acquired for its remote parts.
type cachedPlan struct {
	tmpl *planner.Template

	mu    sync.Mutex
	stmts map[string]uint64 // remote part name -> transport statement id
}

// planEntry is a cache slot. done closes when the filling goroutine
// finishes planning; waiters block on it and then read plan (nil plan after
// done means the fill failed or the shape is uncacheable).
type planEntry struct {
	key  string
	elem *list.Element
	done chan struct{}
	plan *cachedPlan
}

type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*planEntry
	lru     *list.List // front = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// onEvict, when set, runs outside the cache lock for each evicted
	// filled entry (the client uses it to close remote prepared statements).
	onEvict func(*cachedPlan)
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*planEntry),
		lru:     list.New(),
	}
}

// acquire returns the entry for key and whether the caller is its leader
// (responsible for filling it). Non-leaders must wait on e.done before
// reading e.plan.
func (pc *planCache) acquire(key string) (e *planEntry, leader bool) {
	pc.mu.Lock()
	if e, ok := pc.entries[key]; ok {
		pc.lru.MoveToFront(e.elem)
		pc.mu.Unlock()
		return e, false
	}
	e = &planEntry{key: key, done: make(chan struct{})}
	e.elem = pc.lru.PushFront(e)
	pc.entries[key] = e
	evicted := pc.evictLocked()
	pc.mu.Unlock()
	for _, ev := range evicted {
		if pc.onEvict != nil && ev.plan != nil {
			pc.onEvict(ev.plan)
		}
	}
	return e, true
}

// evictLocked drops LRU entries until the cache fits its capacity,
// returning the filled entries dropped so the caller can run onEvict
// outside the lock. Pending (unfilled) entries can be evicted too — their
// leader still closes done, the entry just no longer lives in the map.
func (pc *planCache) evictLocked() []*planEntry {
	var out []*planEntry
	for pc.cap > 0 && pc.lru.Len() > pc.cap {
		back := pc.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*planEntry)
		pc.lru.Remove(back)
		delete(pc.entries, ev.key)
		pc.evictions.Add(1)
		select {
		case <-ev.done:
			out = append(out, ev)
		default:
			// still pending; its leader will fill it, but nobody new can
			// find it — it is garbage once the waiters drain
		}
	}
	return out
}

// fill publishes the leader's planning outcome (plan == nil for a failed or
// uncacheable fill) and wakes waiters.
func (pc *planCache) fill(e *planEntry, plan *cachedPlan) {
	e.plan = plan
	close(e.done)
}

// abandon removes a failed entry so the next execution of the shape retries
// planning, then wakes waiters (who will see a nil plan and plan solo).
func (pc *planCache) abandon(e *planEntry) {
	pc.mu.Lock()
	if cur, ok := pc.entries[e.key]; ok && cur == e {
		pc.lru.Remove(e.elem)
		delete(pc.entries, e.key)
	}
	pc.mu.Unlock()
	close(e.done)
}

func (pc *planCache) stats() PlanCacheStats {
	pc.mu.Lock()
	n := len(pc.entries)
	pc.mu.Unlock()
	return PlanCacheStats{
		Hits:      pc.hits.Load(),
		Misses:    pc.misses.Load(),
		Evictions: pc.evictions.Load(),
		Size:      n,
	}
}

// purge empties the cache, running onEvict for every filled entry (used on
// Close to release remote prepared statements).
func (pc *planCache) purge() {
	pc.mu.Lock()
	var filled []*planEntry
	for _, e := range pc.entries {
		select {
		case <-e.done:
			if e.plan != nil {
				filled = append(filled, e)
			}
		default:
		}
	}
	pc.entries = make(map[string]*planEntry)
	pc.lru.Init()
	pc.mu.Unlock()
	for _, e := range filled {
		if pc.onEvict != nil {
			pc.onEvict(e.plan)
		}
	}
}

// parseCache is a bounded SQL-string → parsed-AST cache. Cached ASTs are
// shared and treated as read-only: every consumer (hoisting, preparation)
// clones before mutating.
type parseCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*ast.Query
}

func newParseCache(capacity int) *parseCache {
	return &parseCache{cap: capacity, m: make(map[string]*ast.Query)}
}

func (pc *parseCache) get(sql string) (*ast.Query, bool) {
	pc.mu.Lock()
	q, ok := pc.m[sql]
	pc.mu.Unlock()
	return q, ok
}

func (pc *parseCache) clear() {
	pc.mu.Lock()
	pc.m = make(map[string]*ast.Query)
	pc.mu.Unlock()
}

func (pc *parseCache) put(sql string, q *ast.Query) {
	pc.mu.Lock()
	if len(pc.m) >= pc.cap {
		// Arbitrary-member eviction, like the decryption cache: Go map
		// iteration order serves as the random draw.
		for k := range pc.m {
			delete(pc.m, k)
			break
		}
	}
	pc.m[sql] = q
	pc.mu.Unlock()
}
