package client

// The repeated-query fast path. A query's cache key is its *shape*: the
// SQL rendering with every literal hoisted into a parameter slot, plus the
// kind of every parameter value (an int-vs-string parameter changes which
// encrypted rewrites are legal, so kinds are part of the key), plus the
// planner mode. The first execution of a shape plans normally, then
// parameterizes the plan into a template (planner.Parameterize) and caches
// it; subsequent executions rebind — re-encrypt the parameter values under
// the sites' key items — and run, skipping parse, prepare, rewrite, and
// costing. Both the cold (filling) and warm executions of a cacheable
// shape run through the same template path, so the bytes a repeated query
// produces never depend on whether its plan was cached.

import (
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/planner"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/value"
)

// shapeParamPrefix names the parameter slots literal hoisting creates for
// the cache key (":qpN"). Caller parameters may not use the prefix — such
// queries bypass the cache.
const shapeParamPrefix = "qp"

const (
	defaultPlanCacheCap  = 256
	defaultParseCacheCap = 256
)

// execCtx carries one execution's parameter bindings through the plan
// runner. nil = cold path: plan queries carry inline literals.
type execCtx struct {
	encp   map[string]value.Value // remote-side (":cpN") encrypted bindings
	localp map[string]value.Value // local-engine (":lpN") plaintext bindings
	entry  *cachedPlan            // owning cache entry (prepared-stmt handles)
}

func (ec *execCtx) localParams() map[string]value.Value {
	if ec == nil {
		return nil
	}
	return ec.localp
}

func (ec *execCtx) encParams() map[string]value.Value {
	if ec == nil {
		return nil
	}
	return ec.encp
}

// shapeKey normalizes a query to its cache key, shape AST, and merged
// parameter values. ok=false means the query can't go through the cache
// (caller parameter names collide with the hoist prefix).
func (c *Client) shapeKey(q *ast.Query, params map[string]value.Value) (string, *ast.Query, map[string]value.Value, bool) {
	for name := range params {
		if strings.HasPrefix(name, shapeParamPrefix) {
			return "", nil, nil, false
		}
	}
	shape, hoisted, order := planner.HoistLiterals(q, shapeParamPrefix)
	vals := make(map[string]value.Value, len(hoisted)+len(params))
	for k, v := range hoisted {
		vals[k] = v
	}
	for k, v := range params {
		vals[k] = v
	}
	var b strings.Builder
	b.WriteString(shape.SQL())
	if c.Greedy {
		b.WriteString("\x00greedy")
	}
	for _, name := range order {
		b.WriteByte(0)
		b.WriteByte(byte(hoisted[name].K))
	}
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.WriteByte(0)
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteByte(byte(params[name].K))
	}
	return b.String(), shape, vals, true
}

// executeKeyed runs one execution through the plan cache.
func (c *Client) executeKeyed(key string, shape *ast.Query, vals map[string]value.Value) (*Result, error) {
	e, leader := c.plans.acquire(key)
	if leader {
		c.plans.misses.Add(1)
		return c.fillAndRun(e, shape, vals)
	}
	<-e.done
	if e.plan != nil && e.plan.tmpl != nil {
		c.plans.hits.Add(1)
		res, ok, err := c.executeTemplate(e.plan, vals)
		if ok {
			return res, err
		}
		// Rebind refused (shouldn't happen when kinds match the key, but a
		// changed design item could): fall through to a solo plan.
	} else {
		c.plans.misses.Add(1)
	}
	return c.executeCold(shape, vals)
}

// fillAndRun is the cache-miss leader: plan the shape, parameterize into a
// template if sound, publish the entry, and execute. Cacheable shapes
// execute through the template (identical code path to a warm hit);
// uncacheable ones run their concrete plan and leave a negative entry.
func (c *Client) fillAndRun(e *planEntry, shape *ast.Query, vals map[string]value.Value) (*Result, error) {
	prepared, slots, err := planner.PrepareTagged(shape, vals)
	if err != nil {
		c.plans.abandon(e)
		return nil, err
	}
	res := &Result{}
	subbed, err := c.preExecuteScalarSubqueries(prepared, res)
	if err != nil {
		c.plans.abandon(e)
		return nil, err
	}
	plan, err := c.makePlan(prepared)
	if err != nil {
		c.plans.abandon(e)
		return nil, err
	}
	var cp *cachedPlan
	if !subbed {
		if tmpl, ok := planner.Parameterize(plan, slots); ok {
			cp = &cachedPlan{tmpl: tmpl}
		}
	}
	if cp != nil {
		c.plans.fill(e, cp)
		if tres, ok, err := c.executeTemplate(cp, vals); ok {
			if tres != nil {
				tres.PlanCacheHit = false // the leader planned; not a hit
			}
			return tres, err
		}
		// Rebind refused right after parameterizing: run the concrete plan.
	} else {
		c.plans.fill(e, &cachedPlan{}) // negative: shape known uncacheable
	}
	res.Plan = plan
	cat := storage.NewCatalog()
	if err := c.runPlan(plan, cat, res, nil); err != nil {
		return nil, err
	}
	return c.finishPlan(plan, cat, res, nil)
}

// executeTemplate runs one execution of a cached template: rebind the
// parameter values (deterministic re-encryption per site) and run the
// shared plan. ok=false means the rebind failed and the caller should plan
// from scratch.
func (c *Client) executeTemplate(cp *cachedPlan, vals map[string]value.Value) (*Result, bool, error) {
	encp, localp, err := cp.tmpl.Rebind(c.Keys, vals)
	if err != nil {
		return nil, false, err
	}
	ec := &execCtx{encp: encp, localp: localp, entry: cp}
	res := &Result{Plan: cp.tmpl.Plan, PlanCacheHit: true}
	cat := storage.NewCatalog()
	if err := c.runPlan(cp.tmpl.Plan, cat, res, ec); err != nil {
		return nil, true, err
	}
	r, err := c.finishPlan(cp.tmpl.Plan, cat, res, ec)
	return r, true, err
}

// execRemote ships one RemoteSQL to the executor. On the template path
// with a statement-capable executor it uses a server-side prepared
// statement for the part — registered once per cache entry — so only the
// fresh encrypted parameters cross the wire.
func (c *Client) execRemote(part *planner.RemotePart, q *ast.Query, ec *execCtx) (*server.Response, error) {
	if se, id, ok := c.stmtFor(part, q, ec); ok {
		resp, err := se.ExecuteStmt(id, ec.encParams())
		if err == nil {
			return resp, nil
		}
		// The handle may be stale (server dropped the statement); forget it
		// and re-execute in full — a second error then reports the real
		// query failure.
		c.dropStmt(part, ec)
	}
	return c.exec.Execute(q, ec.encParams())
}

// stmtFor returns (and lazily registers) the prepared-statement handle for
// a remote part of a cached plan.
func (c *Client) stmtFor(part *planner.RemotePart, q *ast.Query, ec *execCtx) (StmtExecutor, uint64, bool) {
	if ec == nil || ec.entry == nil {
		return nil, 0, false
	}
	se, ok := c.exec.(StmtExecutor)
	if !ok {
		return nil, 0, false
	}
	cp := ec.entry
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if id, ok := cp.stmts[part.Name]; ok {
		return se, id, true
	}
	id, err := se.PrepareStmt(q)
	if err != nil {
		return nil, 0, false
	}
	if cp.stmts == nil {
		cp.stmts = make(map[string]uint64)
	}
	cp.stmts[part.Name] = id
	return se, id, true
}

// dropStmt forgets a stale statement handle.
func (c *Client) dropStmt(part *planner.RemotePart, ec *execCtx) {
	if ec == nil || ec.entry == nil {
		return
	}
	ec.entry.mu.Lock()
	delete(ec.entry.stmts, part.Name)
	ec.entry.mu.Unlock()
}

// releaseStmts closes a cached plan's remote statement handles when the
// entry leaves the cache.
func (c *Client) releaseStmts(cp *cachedPlan) {
	se, ok := c.exec.(StmtExecutor)
	if !ok {
		return
	}
	cp.mu.Lock()
	stmts := cp.stmts
	cp.stmts = nil
	cp.mu.Unlock()
	for _, id := range stmts {
		_ = se.CloseStmt(id)
	}
}
