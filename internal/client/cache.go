package client

import (
	"math/rand"

	"repro/internal/value"
)

// decryptCache is the paper's client-side decryption cache: 512 entries
// with a random eviction policy (§8.1). Repeating ciphertexts — DET group
// keys, dictionary-like columns — decrypt once.
type decryptCache struct {
	capacity int
	entries  map[string]value.Value
	keys     []string
	rng      *rand.Rand
}

func newDecryptCache(capacity int) *decryptCache {
	return &decryptCache{
		capacity: capacity,
		entries:  make(map[string]value.Value, capacity),
		rng:      rand.New(rand.NewSource(0x5eed)),
	}
}

func (c *decryptCache) get(key string) (value.Value, bool) {
	v, ok := c.entries[key]
	return v, ok
}

func (c *decryptCache) put(key string, v value.Value) {
	if c.capacity <= 0 {
		return
	}
	if _, exists := c.entries[key]; exists {
		c.entries[key] = v
		return
	}
	if len(c.keys) >= c.capacity {
		i := c.rng.Intn(len(c.keys))
		delete(c.entries, c.keys[i])
		c.keys[i] = key
	} else {
		c.keys = append(c.keys, key)
	}
	c.entries[key] = v
}

// Len reports the number of cached entries (for tests).
func (c *decryptCache) Len() int { return len(c.entries) }
