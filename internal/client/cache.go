package client

import (
	"math/rand"
	"sync"

	"repro/internal/value"
)

// decryptCacheShards is the lock-striping factor: the streamed wire fans
// batch decryption across Options.Parallelism workers that all consult the
// cache, so entries stripe across mutex-guarded shards (capacity split
// evenly) instead of funneling through one lock.
const decryptCacheShards = 8

// decryptCache is the paper's client-side decryption cache: 512 entries
// with a random eviction policy (§8.1). Repeating ciphertexts — DET group
// keys, dictionary-like columns — decrypt once. Safe for concurrent use;
// eviction stays random within each shard, which preserves the paper's
// policy in aggregate.
type decryptCache struct {
	shards []*dcShard
}

type dcShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]value.Value
	keys     []string
	rng      *rand.Rand
}

func newDecryptCache(capacity int) *decryptCache {
	// A cache smaller than the stripe count would leave zero-capacity
	// shards that silently drop entries; tiny caches keep one shard (and
	// with it the exact global random-eviction behavior).
	nshards := decryptCacheShards
	if capacity < decryptCacheShards {
		nshards = 1
	}
	c := &decryptCache{shards: make([]*dcShard, nshards)}
	per := capacity / nshards
	extra := capacity % nshards
	for i := range c.shards {
		n := per
		if i < extra {
			n++
		}
		c.shards[i] = &dcShard{
			capacity: n,
			entries:  make(map[string]value.Value, n),
			rng:      rand.New(rand.NewSource(0x5eed + int64(i))),
		}
	}
	return c
}

// shard stripes a key with FNV-1a.
func (c *decryptCache) shard(key string) *dcShard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

func (c *decryptCache) get(key string) (value.Value, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.entries[key]
	return v, ok
}

func (c *decryptCache) put(key string, v value.Value) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity <= 0 {
		return
	}
	if _, exists := s.entries[key]; exists {
		s.entries[key] = v
		return
	}
	if len(s.keys) >= s.capacity {
		i := s.rng.Intn(len(s.keys))
		delete(s.entries, s.keys[i])
		s.keys[i] = key
	} else {
		s.keys = append(s.keys, key)
	}
	s.entries[key] = v
}

// Len reports the number of cached entries (for tests).
func (c *decryptCache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}
