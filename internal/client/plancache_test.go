package client

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/value"
)

// --- planCache unit behavior ---

func TestPlanCacheLRUEviction(t *testing.T) {
	pc := newPlanCache(2)
	// fill a, b; touch a; insert c → b (LRU) must evict.
	ea, _ := pc.acquire("a")
	pc.fill(ea, &cachedPlan{})
	eb, _ := pc.acquire("b")
	pc.fill(eb, &cachedPlan{})
	if e, leader := pc.acquire("a"); leader {
		t.Fatal("a should be cached")
	} else if e.plan == nil {
		t.Fatal("a should be filled")
	}
	ec, _ := pc.acquire("c")
	pc.fill(ec, &cachedPlan{})
	st := pc.stats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("after eviction: %+v", st)
	}
	// Check a first: acquiring is itself a use, and a leader acquire
	// inserts (possibly evicting), so probe the survivor before the victim.
	if _, leader := pc.acquire("a"); leader {
		t.Fatal("a (recently used) should have survived")
	}
	if _, leader := pc.acquire("b"); !leader {
		t.Fatal("b should have been evicted (LRU)")
	}
}

func TestPlanCacheAbandonRetries(t *testing.T) {
	pc := newPlanCache(4)
	e, leader := pc.acquire("k")
	if !leader {
		t.Fatal("first acquire must lead")
	}
	pc.abandon(e)
	if _, leader := pc.acquire("k"); !leader {
		t.Fatal("abandoned key must be retried by the next acquirer")
	}
}

func TestPlanCacheEvictionClosesStmts(t *testing.T) {
	pc := newPlanCache(1)
	var closed atomic.Int32
	pc.onEvict = func(p *cachedPlan) { closed.Add(int32(len(p.stmts))) }
	e1, _ := pc.acquire("one")
	pc.fill(e1, &cachedPlan{stmts: map[string]uint64{"r0": 1, "r1": 2}})
	e2, _ := pc.acquire("two") // evicts "one"
	pc.fill(e2, &cachedPlan{})
	if closed.Load() != 2 {
		t.Fatalf("expected 2 statement handles released on eviction, got %d", closed.Load())
	}
}

// --- client-level fast path ---

// TestClientPlanCacheHitMiss runs one shape with varying literals: the
// first execution misses and fills; later ones hit and must return the
// same rows the cold path did.
func TestClientPlanCacheHitMiss(t *testing.T) {
	f := newFixture(t)
	shape := "SELECT o_id, o_total FROM orders WHERE o_total >= %d ORDER BY o_id"
	cold := make(map[int][]string)
	for _, lo := range []int{50, 100, 300} {
		res, err := f.client.Query(fmt.Sprintf(shape, lo), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.PlanCacheHit && lo == 50 {
			t.Error("first execution cannot hit the plan cache")
		}
		cold[lo] = canonicalRows(res.Rows, true)
	}
	st := f.client.PlanCacheStats()
	if st.Misses < 1 {
		t.Fatalf("expected a miss: %+v", st)
	}
	if st.Hits < 2 {
		t.Fatalf("varying literals of one shape should hit after the fill: %+v", st)
	}
	for _, lo := range []int{50, 100, 300} {
		res, err := f.client.Query(fmt.Sprintf(shape, lo), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.PlanCacheHit {
			t.Errorf("lo=%d: warm execution missed", lo)
		}
		got := canonicalRows(res.Rows, true)
		if strings.Join(got, "\n") != strings.Join(cold[lo], "\n") {
			t.Errorf("lo=%d: warm rows diverge from cold:\n%v\nvs\n%v", lo, got, cold[lo])
		}
	}
}

// TestClientPlanCacheStampede fires N goroutines at one cold shape
// concurrently: the singleflight fill must plan once-ish (leader plans,
// waiters reuse), every goroutine must get correct rows, and the run must
// be race-free under -race.
func TestClientPlanCacheStampede(t *testing.T) {
	f := newFixture(t)
	var parses atomic.Int32
	f.client.ParseHook = func(string) { parses.Add(1) }
	const n = 16
	sql := "SELECT o_cust, SUM(o_total) FROM orders WHERE o_total > 40 GROUP BY o_cust ORDER BY o_cust"
	want, err := f.client.Query(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := canonicalRows(want.Rows, true)
	f.client.ResetPlanCache()

	var wg sync.WaitGroup
	errs := make([]error, n)
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := f.client.Query(sql, nil)
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = canonicalRows(res.Rows, true)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if strings.Join(rows[i], "\n") != strings.Join(wantRows, "\n") {
			t.Errorf("goroutine %d rows diverge:\n%v\nvs\n%v", i, rows[i], wantRows)
		}
	}
	st := f.client.PlanCacheStats()
	if st.Hits+st.Misses < n {
		t.Errorf("every execution must be counted: %+v", st)
	}
	// The same SQL string parses at most twice across the whole test (once
	// before the reset, once after): the stampede itself shares one parse.
	if got := parses.Load(); got > 2 {
		t.Errorf("stampede parsed %d times; the parse cache should bound it at 2", got)
	}
}

// TestClientParseCache is the regression test for Query re-parsing SQL on
// every call: repeated Query with the same text must parse once.
func TestClientParseCache(t *testing.T) {
	f := newFixture(t)
	var parses atomic.Int32
	f.client.ParseHook = func(string) { parses.Add(1) }
	sql := "SELECT o_id FROM orders WHERE o_cust = 'alice' ORDER BY o_id"
	for i := 0; i < 5; i++ {
		if _, err := f.client.Query(sql, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := parses.Load(); got != 1 {
		t.Errorf("5 executions parsed %d times, want 1", got)
	}
	// A different text is a different parse.
	if _, err := f.client.Query("SELECT o_id FROM orders", nil); err != nil {
		t.Fatal(err)
	}
	if got := parses.Load(); got != 2 {
		t.Errorf("parse count after second shape = %d, want 2", got)
	}
}

// TestClientPreparedParams runs the prepared-statement surface end to end
// in-process: one Stmt, many parameter bindings, each checked against the
// plaintext engine via the fixture.
func TestClientPreparedParams(t *testing.T) {
	f := newFixture(t)
	stmt, err := f.client.Prepare("SELECT o_id, o_total FROM orders WHERE o_total >= :lo ORDER BY o_id")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for i, lo := range []int64{10, 77, 250, 900, 10} {
		res, err := stmt.Execute(map[string]value.Value{"lo": value.NewInt(lo)})
		if err != nil {
			t.Fatalf("lo=%d: %v", lo, err)
		}
		plain := f.checkQuery(t, fmt.Sprintf("SELECT o_id, o_total FROM orders WHERE o_total >= %d ORDER BY o_id", lo), nil)
		got := canonicalRows(res.Rows, true)
		want := canonicalRows(plain.Rows, true)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("lo=%d rows diverge:\n%v\nvs\n%v", lo, got, want)
		}
		if i > 0 && !res.PlanCacheHit {
			t.Errorf("execution %d (lo=%d) should hit the plan cache", i, lo)
		}
	}
}

// TestUncacheableShapeNegativeEntry: a scalar-subquery query substitutes a
// computed constant into the outer plan, which rebinding cannot reproduce —
// the shape must be cached negatively (every execution a miss) and stay
// correct.
func TestUncacheableShapeNegativeEntry(t *testing.T) {
	f := newFixture(t)
	sql := "SELECT o_id FROM orders WHERE o_total > (SELECT SUM(o_total) / 10 FROM orders) ORDER BY o_id"
	var first []string
	for i := 0; i < 3; i++ {
		res, err := f.client.Query(sql, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.PlanCacheHit {
			t.Errorf("execution %d of an uncacheable shape reported a hit", i)
		}
		got := canonicalRows(res.Rows, true)
		if i == 0 {
			first = got
		} else if strings.Join(got, "\n") != strings.Join(first, "\n") {
			t.Errorf("execution %d diverges from the first", i)
		}
	}
	// The outer shape misses every time (checked per-execution above via
	// PlanCacheHit); the pre-executed scalar subquery is its own cacheable
	// shape and may hit from the second execution on.
	st := f.client.PlanCacheStats()
	if st.Misses < 3 {
		t.Errorf("expected >=3 misses: %+v", st)
	}
}
