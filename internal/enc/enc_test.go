package enc

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

func testKeyStore(t testing.TB) *KeyStore {
	t.Helper()
	ks, err := NewKeyStore([]byte("enc-test"), 256)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

func TestItemIdentityAndNaming(t *testing.T) {
	a := ColumnItem("t", "x", DET, value.Int)
	b := ColumnItem("t", "x", OPE, value.Int)
	if a.Key() == b.Key() {
		t.Error("different schemes must have different keys")
	}
	if a.ColumnName() != "x_det" || b.ColumnName() != "x_ope" {
		t.Errorf("names = %q %q", a.ColumnName(), b.ColumnName())
	}
	expr, err := sqlparser.ParseExpr("a * b")
	if err != nil {
		t.Fatal(err)
	}
	p := ExprItem("t", expr, HOM, value.Int)
	if !p.IsPrecomputed() || a.IsPrecomputed() {
		t.Error("precompute detection")
	}
	if p.ColumnName()[:3] != "pc_" {
		t.Errorf("precomp name = %q", p.ColumnName())
	}
}

func TestJoinGroupSharesKeyLabel(t *testing.T) {
	a := ColumnItem("orders", "o_id", DET, value.Int)
	b := ColumnItem("items", "i_order", DET, value.Int)
	if a.KeyLabel() == b.KeyLabel() {
		t.Fatal("ungrouped items must not share keys")
	}
	a.JoinGroup = "orderkey"
	b.JoinGroup = "orderkey"
	if a.KeyLabel() != b.KeyLabel() {
		t.Fatal("grouped items must share keys")
	}
}

func TestDesignOps(t *testing.T) {
	d := &Design{}
	it := ColumnItem("t", "x", DET, value.Int)
	d.Add(it)
	d.Add(it) // duplicate ignored
	if len(d.Items) != 1 {
		t.Errorf("items = %d", len(d.Items))
	}
	if !d.Contains(it) {
		t.Error("Contains")
	}
	other := &Design{}
	other.Add(ColumnItem("t", "y", OPE, value.Int))
	d.Merge(other)
	if len(d.Items) != 2 {
		t.Errorf("after merge = %d", len(d.Items))
	}
	if got := d.TableItems("t"); len(got) != 2 {
		t.Errorf("table items = %d", len(got))
	}
	if _, ok := d.Find("t", "y", OPE); !ok {
		t.Error("Find should locate the OPE item")
	}
	if _, ok := d.Find("t", "y", DET); ok {
		t.Error("Find must respect the scheme")
	}
}

func TestEncryptDecryptValueAllSchemes(t *testing.T) {
	ks := testKeyStore(t)
	cases := []struct {
		item Item
		v    value.Value
	}{
		{ColumnItem("t", "a", DET, value.Int), value.NewInt(-42)},
		{ColumnItem("t", "b", DET, value.Str), value.NewStr("FRANCE")},
		{ColumnItem("t", "c", DET, value.Date), value.NewDate(9131)},
		{ColumnItem("t", "d", OPE, value.Int), value.NewInt(123456)},
		{ColumnItem("t", "e", OPE, value.Date), value.NewDate(9131)},
		{ColumnItem("t", "f", RND, value.Int), value.NewInt(7)},
		{ColumnItem("t", "g", RND, value.Str), value.NewStr("hello world")},
	}
	for _, c := range cases {
		cv, err := ks.EncryptValue(&c.item, c.v)
		if err != nil {
			t.Fatalf("%s: encrypt: %v", c.item.Key(), err)
		}
		pv, err := ks.DecryptValue(&c.item, cv)
		if err != nil {
			t.Fatalf("%s: decrypt: %v", c.item.Key(), err)
		}
		if value.Compare(pv, c.v) != 0 {
			t.Errorf("%s: round trip %v -> %v", c.item.Key(), c.v, pv)
		}
	}
	// NULL passes through.
	it := ColumnItem("t", "a", DET, value.Int)
	cv, err := ks.EncryptValue(&it, value.NewNull())
	if err != nil || !cv.IsNull() {
		t.Error("NULL should encrypt to NULL")
	}
	// SEARCH blobs are not decryptable.
	srch := ColumnItem("t", "s", SEARCH, value.Str)
	blob, err := ks.EncryptValue(&srch, value.NewStr("some words"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ks.DecryptValue(&srch, blob); err == nil {
		t.Error("SEARCH decryption should fail")
	}
	// Scheme/type mismatches fail.
	ope := ColumnItem("t", "d", OPE, value.Int)
	if _, err := ks.EncryptValue(&ope, value.NewStr("no")); err == nil {
		t.Error("OPE over strings should fail")
	}
}

func TestEncryptDatabaseLayout(t *testing.T) {
	cat := storage.NewCatalog()
	tbl, err := cat.Create(storage.Schema{
		Name: "t",
		Cols: []storage.Column{
			{Name: "k", Type: storage.TInt},
			{Name: "v", Type: storage.TInt},
			{Name: "s", Type: storage.TStr},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 30; i++ {
		tbl.MustInsert([]value.Value{value.NewInt(i), value.NewInt(i * 2), value.NewStr("w")})
	}
	ks := testKeyStore(t)
	design := &Design{GroupedAddition: true, MultiRowPacking: true}
	design.Add(ColumnItem("t", "k", DET, value.Int))
	design.Add(ColumnItem("t", "s", RND, value.Str))
	design.Add(ColumnItem("t", "v", HOM, value.Int))
	expr, _ := sqlparser.ParseExpr("v * 2")
	design.Add(ExprItem("t", expr, HOM, value.Int))

	db, err := EncryptDatabase(cat, design, ks)
	if err != nil {
		t.Fatal(err)
	}
	et, err := db.Cat.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	// row_id + k_det + s_rnd (HOM lives in the ciphertext file).
	if len(et.Schema.Cols) != 3 {
		t.Fatalf("enc cols = %v", et.Schema.Cols)
	}
	if et.Schema.Cols[0].Name != RowIDColumn {
		t.Errorf("first col = %s", et.Schema.Cols[0].Name)
	}
	meta := db.Meta["t"]
	if meta == nil || !meta.HasRowID || len(meta.Groups) != 1 {
		t.Fatalf("meta = %+v", meta)
	}
	if len(meta.Groups[0].Items) != 2 {
		t.Errorf("grouped addition should pack both HOM items together, got %d", len(meta.Groups[0].Items))
	}
	g, slot := meta.FindGroupColumn("v")
	if g == nil || slot != 0 {
		t.Errorf("FindGroupColumn(v) = %v %d", g, slot)
	}
	if _, slot2 := meta.FindGroupColumn("(v * 2)"); slot2 != 1 {
		t.Errorf("precomp slot = %d", slot2)
	}
	if db.TotalBytes() <= et.Bytes {
		t.Error("total must include ciphertext files")
	}
	// DET values decrypt back.
	idx, item := meta.FindItem("k", DET)
	if item == nil {
		t.Fatal("k_det missing from meta")
	}
	cv := et.Row(3)[meta.ColumnOf(idx)]
	pv, err := ks.DecryptValue(item, cv)
	if err != nil || pv.AsInt() != 3 {
		t.Errorf("k decrypts to %v (%v)", pv, err)
	}
}

func TestEncryptDatabaseRejectsNegativesInHOM(t *testing.T) {
	cat := storage.NewCatalog()
	tbl, _ := cat.Create(storage.Schema{
		Name: "t", Cols: []storage.Column{{Name: "v", Type: storage.TInt}},
	})
	tbl.MustInsert([]value.Value{value.NewInt(-5)})
	ks := testKeyStore(t)
	design := &Design{GroupedAddition: true, MultiRowPacking: true}
	design.Add(ColumnItem("t", "v", HOM, value.Int))
	if _, err := EncryptDatabase(cat, design, ks); err == nil {
		t.Error("negative HOM values must be rejected")
	}
}

func TestHomGroupBinPacking(t *testing.T) {
	// Many wide HOM items must split across several ciphertext groups when
	// one plaintext cannot hold them all (256-bit test key: ~254 bits).
	cat := storage.NewCatalog()
	cols := []storage.Column{}
	for _, n := range []string{"a", "b", "c", "d", "e", "f"} {
		cols = append(cols, storage.Column{Name: n, Type: storage.TInt})
	}
	tbl, _ := cat.Create(storage.Schema{Name: "t", Cols: cols})
	for i := int64(0); i < 100; i++ {
		row := make([]value.Value, 6)
		for j := range row {
			row[j] = value.NewInt(1 << 40) // 41-bit values + padding
		}
		tbl.MustInsert(row)
	}
	ks := testKeyStore(t)
	design := &Design{GroupedAddition: true, MultiRowPacking: true}
	for _, n := range []string{"a", "b", "c", "d", "e", "f"} {
		design.Add(ColumnItem("t", n, HOM, value.Int))
	}
	db, err := EncryptDatabase(cat, design, ks)
	if err != nil {
		t.Fatal(err)
	}
	meta := db.Meta["t"]
	if len(meta.Groups) < 2 {
		t.Errorf("six 41-bit fields cannot fit one 254-bit plaintext; groups = %d", len(meta.Groups))
	}
	// Every item must still be locatable.
	for _, n := range []string{"a", "f"} {
		if g, _ := meta.FindGroupColumn(n); g == nil {
			t.Errorf("item %s lost in bin packing", n)
		}
	}
}

var _ = ast.NewQuery // keep ast import for expression fixtures

// TestEncryptDatabaseIndexesAndKey checks that encryption builds the
// secondary indexes the schemes imply — a hash index per DET column, an
// ordered index per OPE column — and propagates the plaintext primary key
// onto its DET columns (deterministic encryption preserves equality, so
// uniqueness carries over and the encrypted table enforces it).
func TestEncryptDatabaseIndexesAndKey(t *testing.T) {
	cat := storage.NewCatalog()
	tbl, err := cat.Create(storage.Schema{
		Name: "t",
		Cols: []storage.Column{
			{Name: "k", Type: storage.TInt},
			{Name: "v", Type: storage.TInt},
		},
		Key: []string{"k"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		tbl.MustInsert([]value.Value{value.NewInt(i), value.NewInt(i % 5)})
	}
	ks := testKeyStore(t)
	design := &Design{}
	design.Add(ColumnItem("t", "k", DET, value.Int))
	design.Add(ColumnItem("t", "v", DET, value.Int))
	design.Add(ColumnItem("t", "v", OPE, value.Int))

	db, err := EncryptDatabase(cat, design, ks)
	if err != nil {
		t.Fatal(err)
	}
	et, err := db.Cat.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if ix := et.Index("k_det", storage.HashIndex); ix == nil || ix.Len() != 20 {
		t.Errorf("k_det hash index = %v", ix)
	}
	if ix := et.Index("v_det", storage.HashIndex); ix == nil {
		t.Error("v_det hash index missing")
	}
	if ix := et.Index("v_ope", storage.OrderedIndex); ix == nil || ix.Len() != 20 {
		t.Errorf("v_ope ordered index = %v", ix)
	}
	if got := et.Schema.Key; len(got) != 1 || got[0] != "k_det" {
		t.Errorf("encrypted key = %v, want [k_det]", got)
	}
	if !et.HasKey() {
		t.Error("encrypted table does not enforce its key")
	}
	// A duplicate encrypted key must be rejected like a plaintext one.
	dup := make([]value.Value, len(et.Schema.Cols))
	copy(dup, et.Row(0))
	if err := et.Insert(dup); err == nil {
		t.Error("duplicate DET key insert succeeded")
	}

	// Without a DET item on every key column, no key propagates.
	cat2 := storage.NewCatalog()
	t2, err := cat2.Create(storage.Schema{
		Name: "u",
		Cols: []storage.Column{{Name: "k", Type: storage.TInt}},
		Key:  []string{"k"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t2.MustInsert([]value.Value{value.NewInt(1)})
	d2 := &Design{}
	d2.Add(ColumnItem("u", "k", OPE, value.Int))
	db2, err := EncryptDatabase(cat2, d2, ks)
	if err != nil {
		t.Fatal(err)
	}
	eu, err := db2.Cat.Table("u")
	if err != nil {
		t.Fatal(err)
	}
	if eu.HasKey() {
		t.Error("key propagated without DET coverage")
	}
}
