package enc

import (
	"fmt"
	"math/big"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/packing"
	"repro/internal/storage"
	"repro/internal/value"
)

// GroupMeta describes one Paillier ciphertext group (one "ciphertext file",
// §7) of a table: which HOM items it packs and with what layout.
type GroupMeta struct {
	Name   string
	Items  []Item
	Layout packing.Layout
}

// TableMeta is the encrypted layout of one table: the non-HOM items in
// column order, plus the ciphertext groups.
type TableMeta struct {
	Name     string
	Items    []Item // non-HOM items; column i+rowIDOffset of the enc table
	HasRowID bool
	Groups   []*GroupMeta
}

// ColumnOf returns the encrypted-table column index of item i.
func (tm *TableMeta) ColumnOf(i int) int {
	if tm.HasRowID {
		return i + 1
	}
	return i
}

// FindItem locates a non-HOM item by expression SQL and scheme.
func (tm *TableMeta) FindItem(exprSQL string, scheme Scheme) (int, *Item) {
	for i := range tm.Items {
		it := &tm.Items[i]
		if it.Scheme == scheme && it.ExprSQL() == exprSQL {
			return i, it
		}
	}
	return -1, nil
}

// FindGroupColumn locates a HOM item inside the table's ciphertext groups,
// returning the group and the item's slot index within the group's layout.
func (tm *TableMeta) FindGroupColumn(exprSQL string) (*GroupMeta, int) {
	for _, g := range tm.Groups {
		for j := range g.Items {
			if g.Items[j].ExprSQL() == exprSQL {
				return g, j
			}
		}
	}
	return nil, -1
}

// DB is an encrypted database: the server-side catalog of encrypted tables,
// the Paillier ciphertext files, and the layout metadata shared with the
// trusted client (the metadata reveals only schema structure, not data).
type DB struct {
	Cat    *storage.Catalog
	Stores map[string]*packing.Store
	Meta   map[string]*TableMeta
}

// TotalBytes is the full server-side footprint: encrypted heap tables plus
// ciphertext files. This is the quantity the space budget S constrains.
func (db *DB) TotalBytes() int64 {
	n := db.Cat.TotalBytes()
	for _, s := range db.Stores {
		n += s.Bytes()
	}
	return n
}

// EncryptDatabase transforms the plaintext catalog into an encrypted
// database under the given physical design. Each plaintext table named in
// the design becomes one encrypted table (one or more encrypted copies per
// column, §7) plus optional ciphertext files for the HOM groups.
func EncryptDatabase(plain *storage.Catalog, design *Design, ks *KeyStore) (*DB, error) {
	return EncryptDatabaseParallel(plain, design, ks, 0)
}

// EncryptDatabaseParallel is EncryptDatabase with an explicit worker count
// for the encryption-time expression scans over the plaintext tables
// (0 = GOMAXPROCS, 1 = sequential).
func EncryptDatabaseParallel(plain *storage.Catalog, design *Design, ks *KeyStore, par int) (*DB, error) {
	return EncryptDatabaseOn(plain, design, ks, par, storage.BackendConfig{})
}

// EncryptDatabaseOn is EncryptDatabaseParallel with an explicit storage
// backend for the encrypted catalog: the zero config keeps the encrypted
// tables in memory, a disk config loads them straight into paged segment
// files (flushed table by table, so the load never holds more than the
// block cache resident).
func EncryptDatabaseOn(plain *storage.Catalog, design *Design, ks *KeyStore, par int, cfg storage.BackendConfig) (*DB, error) {
	eng := engine.New(plain)
	eng.Parallelism = par
	db := &DB{
		Cat:    storage.NewCatalogWith(cfg),
		Stores: make(map[string]*packing.Store),
		Meta:   make(map[string]*TableMeta),
	}
	// Group items by table, preserving design order.
	tables := make([]string, 0)
	seen := make(map[string]bool)
	for _, it := range design.Items {
		if !seen[it.Table] {
			seen[it.Table] = true
			tables = append(tables, it.Table)
		}
	}
	for _, tbl := range tables {
		if err := encryptTable(db, eng, plain, design, ks, tbl); err != nil {
			return nil, fmt.Errorf("enc: table %s: %w", tbl, err)
		}
	}
	return db, nil
}

func encryptTable(db *DB, eng *engine.Engine, plain *storage.Catalog, design *Design, ks *KeyStore, tbl string) error {
	items := design.TableItems(tbl)
	var rowItems []Item // non-HOM, stored in the row
	var homItems []Item
	for _, it := range items {
		if it.Scheme == HOM {
			homItems = append(homItems, it)
		} else {
			rowItems = append(rowItems, it)
		}
	}

	// Evaluate every item expression over the plaintext table in one scan.
	q := ast.NewQuery()
	q.From = []ast.TableRef{{Name: tbl}}
	for _, it := range items {
		q.Projections = append(q.Projections, ast.SelectItem{Expr: it.Expr.Clone()})
	}
	res, err := eng.Execute(q, nil)
	if err != nil {
		return err
	}

	meta := &TableMeta{Name: tbl, Items: rowItems, HasRowID: len(homItems) > 0}
	db.Meta[tbl] = meta

	// Column index of each item in the evaluation result.
	colOf := make(map[string]int)
	for i, it := range items {
		colOf[it.Key()] = i
	}

	// Padding absorbs the carry of summing every row (§5.3): the paper
	// assumes ~2^27 rows; we size it from the actual table.
	padBits := big.NewInt(int64(len(res.Rows))+1).BitLen() + 1

	// Measure each HOM item's value width.
	homBits := make([]int, len(homItems))
	for j := range homItems {
		ci := colOf[homItems[j].Key()]
		maxBits := 1
		for _, row := range res.Rows {
			v := row[ci]
			if v.IsNull() {
				continue
			}
			x := v.AsInt()
			if x < 0 {
				return fmt.Errorf("HOM item %s: negative value %d not packable", homItems[j].Key(), x)
			}
			if b := big.NewInt(x).BitLen(); b > maxBits {
				maxBits = b
			}
		}
		homBits[j] = maxBits
	}

	// Build HOM groups. Grouped addition packs a query's aggregated
	// columns together (§5.3); when a table's fields exceed one plaintext
	// the paper's "do not split a row across plaintexts" rule forces a new
	// group, so we first-fit items into plaintext-sized bins.
	plainBits := ks.Paillier().PlaintextBits()
	var groups [][]int // indexes into homItems
	if len(homItems) > 0 {
		if design.GroupedAddition {
			binBits := 0
			var bin []int
			for j := range homItems {
				fb := homBits[j] + padBits
				if fb > plainBits {
					return fmt.Errorf("HOM item %s needs %d bits, plaintext has %d", homItems[j].Key(), fb, plainBits)
				}
				if binBits+fb > plainBits && len(bin) > 0 {
					groups = append(groups, bin)
					bin = nil
					binBits = 0
				}
				bin = append(bin, j)
				binBits += fb
			}
			if len(bin) > 0 {
				groups = append(groups, bin)
			}
		} else {
			for j := range homItems {
				groups = append(groups, []int{j})
			}
		}
	}

	// Encrypted table schema.
	schema := storage.Schema{Name: tbl}
	if meta.HasRowID {
		schema.Cols = append(schema.Cols, storage.Column{Name: RowIDColumn, Type: storage.TInt})
	}
	for i := range rowItems {
		it := &rowItems[i]
		typ := storage.TBytes
		if it.Scheme == DET && (it.PlainKind == value.Int || it.PlainKind == value.Date || it.PlainKind == value.Bool) {
			typ = storage.TInt
		}
		schema.Cols = append(schema.Cols, storage.Column{Name: it.ColumnName(), Type: typ})
	}
	schema.Key = encryptedKey(plain, tbl, rowItems)
	encTable, err := db.Cat.Create(schema)
	if err != nil {
		return err
	}

	// Secondary indexes on the encrypted columns (built empty here; Insert
	// maintains them incrementally): DET equality preserves plaintext
	// equality, so a hash index answers `=`/`IN` probes and hash-join
	// builds; OPE preserves plaintext order, so an ordered index answers
	// range predicates and prefix ORDER BY.
	for i := range rowItems {
		it := &rowItems[i]
		switch it.Scheme {
		case DET:
			_, err = encTable.EnsureIndex(it.ColumnName(), storage.HashIndex)
		case OPE:
			_, err = encTable.EnsureIndex(it.ColumnName(), storage.OrderedIndex)
		}
		if err != nil {
			return err
		}
	}

	// Encrypt row items.
	for rowID, row := range res.Rows {
		out := make([]value.Value, 0, len(schema.Cols))
		if meta.HasRowID {
			out = append(out, value.NewInt(int64(rowID)))
		}
		for i := range rowItems {
			it := &rowItems[i]
			cv, err := ks.EncryptValue(it, row[colOf[it.Key()]])
			if err != nil {
				return fmt.Errorf("item %s: %w", it.Key(), err)
			}
			out = append(out, cv)
		}
		if err := encTable.Insert(out); err != nil {
			return err
		}
	}
	// Persist the loaded rows and segment metadata (schema, index specs,
	// row count); a no-op for the in-memory backend.
	if err := encTable.Flush(); err != nil {
		return err
	}

	// Build the ciphertext files.
	for gi, bin := range groups {
		gname := fmt.Sprintf("%s/g%d", tbl, gi)
		gItems := make([]Item, len(bin))
		cols := make([]packing.Col, len(bin))
		for bj, j := range bin {
			gItems[bj] = homItems[j]
			cols[bj] = packing.Col{Name: homItems[j].ColumnName(), Bits: homBits[j]}
		}
		vals := make([][]int64, len(res.Rows))
		for r, row := range res.Rows {
			vals[r] = make([]int64, len(bin))
			for bj, j := range bin {
				v := row[colOf[homItems[j].Key()]]
				if v.IsNull() {
					continue // packs as zero; TPC-H data is NULL-free
				}
				vals[r][bj] = v.AsInt()
			}
		}
		layout, err := packing.NewLayout(cols, padBits, plainBits, design.MultiRowPacking)
		if err != nil {
			return err
		}
		store, err := packing.BuildStore(gname, ks.Paillier(), layout, vals)
		if err != nil {
			return err
		}
		db.Stores[gname] = store
		meta.Groups = append(meta.Groups, &GroupMeta{Name: gname, Items: gItems, Layout: layout})
	}
	return nil
}

// encryptedKey maps the plaintext table's primary key onto the encrypted
// schema: when every key column carries a DET item (deterministic
// encryption preserves equality, so plaintext uniqueness carries over), the
// encrypted table declares the corresponding `<col>_det` columns as its
// key and enforces the same uniqueness on load. Any gap — no plaintext
// key, or a key column without DET — yields no key.
func encryptedKey(plain *storage.Catalog, tbl string, rowItems []Item) []string {
	pt, err := plain.Table(tbl)
	if err != nil || len(pt.Schema.Key) == 0 {
		return nil
	}
	key := make([]string, 0, len(pt.Schema.Key))
	for _, kc := range pt.Schema.Key {
		found := ""
		for i := range rowItems {
			it := &rowItems[i]
			if it.Scheme != DET {
				continue
			}
			if cr, ok := it.Expr.(*ast.ColumnRef); ok && cr.Column == kc {
				found = it.ColumnName()
				break
			}
		}
		if found == "" {
			return nil
		}
		key = append(key, found)
	}
	return key
}
