// Package enc defines MONOMI's encrypted physical design: which
// ⟨value, scheme⟩ pairs (§6.2) are materialized as encrypted columns on the
// untrusted server, how plaintext tables are transformed into encrypted
// ones, and how the trusted client's key store encrypts constants and
// decrypts results.
package enc

import (
	"fmt"
	"hash/fnv"

	"repro/internal/ast"
	"repro/internal/value"
)

// Scheme enumerates the encryption schemes of Table 1.
type Scheme uint8

// The encryption schemes, ordered weakest-leakage-last for the security
// report (Table 3 counts columns by their weakest scheme).
const (
	RND    Scheme = iota // randomized AES-CTR: no server computation, no leakage
	HOM                  // Paillier (packed): SUM/AVG on server, no leakage
	SEARCH               // SWP-style: LIKE '%word%', reveals matching rows per token
	DET                  // deterministic: =, IN, GROUP BY, joins; reveals duplicates
	OPE                  // order-preserving: <, ORDER BY, MIN/MAX; reveals order
)

func (s Scheme) String() string {
	switch s {
	case RND:
		return "RND"
	case DET:
		return "DET"
	case OPE:
		return "OPE"
	case HOM:
		return "HOM"
	case SEARCH:
		return "SEARCH"
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// suffix is the encrypted-column name suffix for the scheme.
func (s Scheme) suffix() string {
	switch s {
	case RND:
		return "rnd"
	case DET:
		return "det"
	case OPE:
		return "ope"
	case HOM:
		return "hom"
	case SEARCH:
		return "srch"
	}
	return "x"
}

// Item is one ⟨value, scheme⟩ pair: an encryption of a base column or of a
// precomputed per-row expression (§5.1), materialized in a table.
type Item struct {
	Table     string
	Expr      ast.Expr // a ColumnRef, or a per-row expression to precompute
	Scheme    Scheme
	PlainKind value.Kind // plaintext kind, needed for client-side decryption
	// JoinGroup, when non-empty, makes this DET item share its key with
	// every other item in the same group, so the server can evaluate
	// equi-joins across tables (CryptDB's JOIN onion played this role).
	// The designer assigns groups from the schema's key relationships.
	JoinGroup string
}

// IsPrecomputed reports whether the item encrypts a derived expression
// rather than a base column.
func (it *Item) IsPrecomputed() bool {
	_, isCol := it.Expr.(*ast.ColumnRef)
	return !isCol
}

// ExprSQL renders the item's value expression canonically.
func (it *Item) ExprSQL() string { return it.Expr.SQL() }

// Key is the item's canonical identity: table, expression, and scheme.
func (it *Item) Key() string {
	return it.Table + "|" + it.ExprSQL() + "|" + it.Scheme.String()
}

// ColumnName is the encrypted column's name in the server-side table, e.g.
// "l_shipdate_ope" for a base column or "pc_1a2b3c4d_det" for a
// precomputed expression.
func (it *Item) ColumnName() string {
	if cr, ok := it.Expr.(*ast.ColumnRef); ok {
		return cr.Column + "_" + it.Scheme.suffix()
	}
	h := fnv.New32a()
	h.Write([]byte(it.ExprSQL()))
	return fmt.Sprintf("pc_%08x_%s", h.Sum32(), it.Scheme.suffix())
}

// KeyLabel is the key-derivation label for the item's subkey. Items in the
// same join group share a label (and therefore a key).
func (it *Item) KeyLabel() string {
	if it.JoinGroup != "" {
		return it.Scheme.String() + "/join:" + it.JoinGroup
	}
	return it.Scheme.String() + "/" + it.Table + "." + it.ExprSQL()
}

// RowIDColumn is the name of the row-identifier column added to tables that
// carry packed Paillier ciphertext files (§7).
const RowIDColumn = "row_id"

// Design is a physical design: the set of encrypted items to materialize,
// plus the Paillier layout policy (§5.2–§5.3).
type Design struct {
	Items []Item
	// GroupedAddition packs all HOM items of a table into one ciphertext
	// group so their aggregates cost one modular multiplication per row.
	GroupedAddition bool
	// MultiRowPacking packs multiple rows into each 1,024-bit plaintext.
	MultiRowPacking bool
}

// Contains reports whether the design has an item with the same identity.
func (d *Design) Contains(it Item) bool {
	k := it.Key()
	for i := range d.Items {
		if d.Items[i].Key() == k {
			return true
		}
	}
	return false
}

// Add inserts an item if an identical one is not already present.
func (d *Design) Add(it Item) {
	if !d.Contains(it) {
		d.Items = append(d.Items, it)
	}
}

// Merge adds every item of other into d.
func (d *Design) Merge(other *Design) {
	for _, it := range other.Items {
		d.Add(it)
	}
}

// TableItems returns the design's items for one table, preserving order.
func (d *Design) TableItems(table string) []Item {
	var out []Item
	for _, it := range d.Items {
		if it.Table == table {
			out = append(out, it)
		}
	}
	return out
}

// Find locates an item by table, expression SQL, and scheme.
func (d *Design) Find(table, exprSQL string, scheme Scheme) (*Item, bool) {
	for i := range d.Items {
		it := &d.Items[i]
		if it.Table == table && it.Scheme == scheme && it.ExprSQL() == exprSQL {
			return it, true
		}
	}
	return nil, false
}

// ColumnItem is a convenience constructor for a base-column item.
func ColumnItem(table, column string, scheme Scheme, kind value.Kind) Item {
	return Item{
		Table:     table,
		Expr:      &ast.ColumnRef{Column: column},
		Scheme:    scheme,
		PlainKind: kind,
	}
}

// ExprItem is a convenience constructor for a precomputed-expression item.
func ExprItem(table string, expr ast.Expr, scheme Scheme, kind value.Kind) Item {
	return Item{Table: table, Expr: expr, Scheme: scheme, PlainKind: kind}
}
