package enc

import (
	"fmt"
	"sync"

	"repro/internal/crypto/det"
	"repro/internal/crypto/ope"
	"repro/internal/crypto/paillier"
	"repro/internal/crypto/prf"
	"repro/internal/crypto/rnd"
	"repro/internal/crypto/search"
	"repro/internal/value"
)

// KeyStore holds the master key and lazily derives per-item scheme
// instances. Only the trusted client owns a KeyStore (Figure 1: "the ODBC
// library ... is the only component that has access to the decryption
// keys").
type KeyStore struct {
	master   []byte
	paillier *paillier.Key

	mu     sync.Mutex
	dets   map[string]*det.Scheme
	opes   map[string]*ope.Scheme
	rnds   map[string]*rnd.Scheme
	srches map[string]*search.Scheme
	ppool  *paillier.Pool
}

// NewKeyStore creates a key store with the given master secret and Paillier
// modulus width (1024 in the paper; tests use smaller).
func NewKeyStore(master []byte, paillierBits int) (*KeyStore, error) {
	pk, err := paillier.GenerateKey(paillierBits)
	if err != nil {
		return nil, err
	}
	return &KeyStore{
		master:   master,
		paillier: pk,
		dets:     make(map[string]*det.Scheme),
		opes:     make(map[string]*ope.Scheme),
		rnds:     make(map[string]*rnd.Scheme),
		srches:   make(map[string]*search.Scheme),
	}, nil
}

// Paillier returns the store's Paillier keypair.
func (ks *KeyStore) Paillier() *paillier.Key { return ks.paillier }

// EnablePaillierPool attaches a background randomness pool to the Paillier
// key: workers goroutines precompute the r^N mod N² blinding factors so
// hot-path encryptions skip the modular exponentiation. Callers that enable
// the pool own its lifetime and must call Close to join the workers.
func (ks *KeyStore) EnablePaillierPool(capacity, workers int) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if ks.ppool != nil {
		return
	}
	ks.ppool = paillier.NewPool(ks.paillier, capacity, workers)
	ks.paillier.UsePool(ks.ppool)
}

// Close stops any background workers the store started (currently the
// Paillier randomness pool). Safe to call when nothing was enabled.
func (ks *KeyStore) Close() {
	ks.mu.Lock()
	p := ks.ppool
	ks.ppool = nil
	ks.mu.Unlock()
	if p != nil {
		ks.paillier.UsePool(nil)
		p.Close()
	}
}

// Det returns the DET scheme for an item.
func (ks *KeyStore) Det(it *Item) *det.Scheme {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	label := it.KeyLabel()
	s, ok := ks.dets[label]
	if !ok {
		s = det.MustNew(prf.DeriveKey(ks.master, label))
		ks.dets[label] = s
	}
	return s
}

// Ope returns the OPE scheme for an item.
func (ks *KeyStore) Ope(it *Item) *ope.Scheme {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	label := it.KeyLabel()
	s, ok := ks.opes[label]
	if !ok {
		s = ope.MustNew(prf.DeriveKey(ks.master, label))
		ks.opes[label] = s
	}
	return s
}

// Rnd returns the RND scheme for an item.
func (ks *KeyStore) Rnd(it *Item) (*rnd.Scheme, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	label := it.KeyLabel()
	s, ok := ks.rnds[label]
	if !ok {
		var err error
		s, err = rnd.New(prf.DeriveKey(ks.master, label))
		if err != nil {
			return nil, err
		}
		ks.rnds[label] = s
	}
	return s, nil
}

// Search returns the SEARCH scheme for an item.
func (ks *KeyStore) Search(it *Item) *search.Scheme {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	label := it.KeyLabel()
	s, ok := ks.srches[label]
	if !ok {
		s = search.MustNew(prf.DeriveKey(ks.master, label))
		ks.srches[label] = s
	}
	return s
}

// EncryptValue encrypts one plaintext value under an item's scheme,
// producing the server-side representation. HOM items are handled by the
// pack store, not here.
func (ks *KeyStore) EncryptValue(it *Item, v value.Value) (value.Value, error) {
	if v.IsNull() {
		return value.NewNull(), nil
	}
	switch it.Scheme {
	case DET:
		switch v.K {
		case value.Int, value.Date, value.Bool:
			return value.NewInt(int64(ks.Det(it).EncryptInt64(v.AsInt()))), nil
		case value.Str:
			return value.NewBytes(ks.Det(it).EncryptString(v.S)), nil
		case value.Bytes:
			return value.NewBytes(ks.Det(it).EncryptBytes(v.B)), nil
		}
		return value.Value{}, fmt.Errorf("enc: DET cannot encrypt %v", v.K)
	case OPE:
		if !v.IsNumeric() {
			return value.Value{}, fmt.Errorf("enc: OPE requires numeric plaintext, got %v", v.K)
		}
		c, err := ks.Ope(it).Encrypt(v.AsInt())
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBytes(c), nil
	case RND:
		s, err := ks.Rnd(it)
		if err != nil {
			return value.Value{}, err
		}
		ct, err := s.Encrypt(encodePlain(v))
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBytes(ct), nil
	case SEARCH:
		if v.K != value.Str {
			return value.Value{}, fmt.Errorf("enc: SEARCH requires string plaintext, got %v", v.K)
		}
		return value.NewBytes(ks.Search(it).EncryptText(v.S)), nil
	}
	return value.Value{}, fmt.Errorf("enc: cannot encrypt under %v", it.Scheme)
}

// DecryptValue inverts EncryptValue using the item's recorded plaintext
// kind.
func (ks *KeyStore) DecryptValue(it *Item, cv value.Value) (value.Value, error) {
	if cv.IsNull() {
		return value.NewNull(), nil
	}
	switch it.Scheme {
	case DET:
		switch it.PlainKind {
		case value.Int, value.Bool:
			return value.NewInt(ks.Det(it).DecryptInt64(uint64(cv.AsInt()))), nil
		case value.Date:
			return value.NewDate(ks.Det(it).DecryptInt64(uint64(cv.AsInt()))), nil
		case value.Str:
			return value.NewStr(ks.Det(it).DecryptString(cv.B)), nil
		case value.Bytes:
			return value.NewBytes(ks.Det(it).DecryptBytes(cv.B)), nil
		}
		return value.Value{}, fmt.Errorf("enc: DET cannot decrypt to %v", it.PlainKind)
	case OPE:
		x, err := ks.Ope(it).Decrypt(cv.B)
		if err != nil {
			return value.Value{}, err
		}
		if it.PlainKind == value.Date {
			return value.NewDate(x), nil
		}
		return value.NewInt(x), nil
	case RND:
		s, err := ks.Rnd(it)
		if err != nil {
			return value.Value{}, err
		}
		pt, err := s.Decrypt(cv.B)
		if err != nil {
			return value.Value{}, err
		}
		return decodePlain(it.PlainKind, pt)
	case SEARCH:
		return value.Value{}, fmt.Errorf("enc: SEARCH blobs are not decryptable (store a RND/DET copy)")
	}
	return value.Value{}, fmt.Errorf("enc: cannot decrypt %v", it.Scheme)
}

// encodePlain serializes a plaintext value for RND encryption.
func encodePlain(v value.Value) []byte {
	switch v.K {
	case value.Int, value.Date, value.Bool:
		x := uint64(v.AsInt())
		return []byte{
			byte(x >> 56), byte(x >> 48), byte(x >> 40), byte(x >> 32),
			byte(x >> 24), byte(x >> 16), byte(x >> 8), byte(x),
		}
	case value.Str:
		return []byte(v.S)
	case value.Bytes:
		return v.B
	}
	return nil
}

// decodePlain inverts encodePlain.
func decodePlain(kind value.Kind, pt []byte) (value.Value, error) {
	switch kind {
	case value.Int, value.Date, value.Bool:
		if len(pt) != 8 {
			return value.Value{}, fmt.Errorf("enc: bad integer plaintext length %d", len(pt))
		}
		x := int64(uint64(pt[0])<<56 | uint64(pt[1])<<48 | uint64(pt[2])<<40 | uint64(pt[3])<<32 |
			uint64(pt[4])<<24 | uint64(pt[5])<<16 | uint64(pt[6])<<8 | uint64(pt[7]))
		if kind == value.Date {
			return value.NewDate(x), nil
		}
		return value.NewInt(x), nil
	case value.Str:
		return value.NewStr(string(pt)), nil
	case value.Bytes:
		return value.NewBytes(pt), nil
	}
	return value.Value{}, fmt.Errorf("enc: cannot decode kind %v", kind)
}
