package lint

import (
	"go/types"
	"strconv"
)

// Trustflow enforces MONOMI's trust boundary (§3 of the paper): secret
// key material and the helpers that produce plaintext from ciphertext
// exist only on the trusted client side of the split. The untrusted
// server-side packages — engine, storage, transport, wire, netsim,
// server — see ciphertext alone, so none of them may:
//
//  1. import the keyed scheme packages (crypto/det, crypto/ope,
//     crypto/rnd, crypto/prf) — holding a scheme object means holding a
//     derived key;
//  2. reference a trusted-only symbol (enc.KeyStore, enc.NewKeyStore,
//     enc.EncryptDatabase, paillier.Key, paillier.GenerateKey, the
//     Paillier randomness Pool, packing.ClientSums/BuildStore/PlainCache,
//     search's keyed Scheme — search.Match on public trapdoors is fine);
//  3. declare any variable, field, parameter or result whose type
//     transitively contains a trusted-only type — the rule that catches
//     a *paillier.Key smuggled to the server inside a struct such as the
//     pre-PR-10 packing.Store, which embedded the full keypair in the
//     server-resident ciphertext file.
//
// The check is package-level and type-directed rather than a full
// interprocedural taint analysis: inside the module every secret is a
// distinguished named type, so "no untrusted package can even name or
// hold the secret" implies "no flow". Legitimate exceptions carry a
// //monomi:trusted annotation with a justification.
var Trustflow = &Analyzer{
	Name: "trustflow",
	Doc:  "secrets and plaintext-producing helpers must not reach untrusted (server-side) packages",
	Run:  runTrustflow,
}

// untrustedPackages are the server-side package subtrees. A package is
// untrusted if its import path is one of these or below one of these.
var untrustedPackages = []string{
	"repro/internal/engine",
	"repro/internal/storage",
	"repro/internal/transport",
	"repro/internal/wire",
	"repro/internal/netsim",
	"repro/internal/server",
}

// bannedImports may not be imported by untrusted packages at all: every
// exported entry point of these packages is keyed.
var bannedImports = []string{
	"repro/internal/crypto/det",
	"repro/internal/crypto/ope",
	"repro/internal/crypto/rnd",
	"repro/internal/crypto/prf",
}

// trustedOnly maps package path → exported names that only the trusted
// client may reference. Types listed here also poison any type that
// transitively contains them (rule 3 above).
var trustedOnly = map[string]map[string]bool{
	"repro/internal/enc": {
		"KeyStore":          true,
		"NewKeyStore":       true,
		"EncryptDatabase":   true,
		"EncryptDatabaseOn": true,
	},
	"repro/internal/crypto/paillier": {
		"Key":         true,
		"GenerateKey": true,
		"Pool":        true,
		"NewPool":     true,
	},
	"repro/internal/crypto/det": {
		"Scheme": true, "New": true, "MustNew": true,
	},
	"repro/internal/crypto/ope": {
		"Scheme": true, "New": true, "MustNew": true,
	},
	"repro/internal/crypto/rnd": {
		"Scheme": true, "New": true, "MustNew": true,
	},
	"repro/internal/crypto/search": {
		"Scheme": true, "New": true, "MustNew": true,
	},
	"repro/internal/crypto/prf": {
		"DeriveKey": true,
	},
	"repro/internal/packing": {
		"ClientSums":    true,
		"BuildStore":    true,
		"PlainCache":    true,
		"NewPlainCache": true,
	},
}

// IsUntrustedPackage reports whether an import path lies in the untrusted
// (server-side) subtree. Exported for the multichecker's diagnostics.
func IsUntrustedPackage(path string) bool {
	for _, u := range untrustedPackages {
		if pathHasPrefix(path, u) {
			return true
		}
	}
	return false
}

// isTrustedOnlyObject reports whether obj is in the trusted-only set.
func isTrustedOnlyObject(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	names := trustedOnly[obj.Pkg().Path()]
	return names != nil && names[obj.Name()] && obj.Parent() == obj.Pkg().Scope()
}

func runTrustflow(pass *Pass) error {
	if !IsUntrustedPackage(pass.Pkg.Path()) {
		return nil
	}

	// Rule 1: banned imports.
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, banned := range bannedImports {
				if pathHasPrefix(path, banned) {
					pass.Reportf(imp.Pos(),
						"untrusted package %s imports keyed crypto package %s; scheme objects hold derived keys and must stay on the trusted client (MONOMI §3)",
						pass.Pkg.Path(), path)
				}
			}
		}
	}

	// Rule 2: direct references to trusted-only symbols.
	for id, obj := range pass.TypesInfo.Uses {
		if isTrustedOnlyObject(obj) {
			pass.Reportf(id.Pos(),
				"untrusted package %s references trusted-only symbol %s.%s (MONOMI §3: only the client holds keys and plaintext)",
				pass.Pkg.Path(), obj.Pkg().Path(), obj.Name())
		}
	}

	// Rule 3: declared vars/fields/params/results whose type transitively
	// contains a trusted-only type.
	seen := map[*types.Named]containment{}
	for id, obj := range pass.TypesInfo.Defs {
		v, ok := obj.(*types.Var)
		if !ok {
			continue
		}
		if leak := containsTrustedType(v.Type(), seen, nil); leak != "" {
			pass.Reportf(id.Pos(),
				"untrusted package %s holds a value of type %s, which transitively contains trusted-only type %s (MONOMI §3: the server must never hold key material)",
				pass.Pkg.Path(), types.TypeString(v.Type(), nil), leak)
		}
	}
	return nil
}

// containment memoizes containsTrustedType results per named type.
type containment struct {
	done bool
	leak string
}

// containsTrustedType walks a type's structure and returns the fully
// qualified name of the first trusted-only named type it contains, or "".
// Function and interface types do not count as containment (a function
// value cannot be opened by the server; an interface hides its dynamic
// type from the static boundary and is the decryptor-callback seam).
func containsTrustedType(t types.Type, memo map[*types.Named]containment, stack []*types.Named) string {
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if isTrustedOnlyObject(obj) {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		if c, ok := memo[t]; ok {
			if c.done {
				return c.leak
			}
			return "" // cycle in progress: assume clean, outer frame decides
		}
		memo[t] = containment{}
		leak := containsTrustedType(t.Underlying(), memo, append(stack, t))
		memo[t] = containment{done: true, leak: leak}
		return leak
	case *types.Pointer:
		return containsTrustedType(t.Elem(), memo, stack)
	case *types.Slice:
		return containsTrustedType(t.Elem(), memo, stack)
	case *types.Array:
		return containsTrustedType(t.Elem(), memo, stack)
	case *types.Map:
		if leak := containsTrustedType(t.Key(), memo, stack); leak != "" {
			return leak
		}
		return containsTrustedType(t.Elem(), memo, stack)
	case *types.Chan:
		return containsTrustedType(t.Elem(), memo, stack)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if leak := containsTrustedType(t.Field(i).Type(), memo, stack); leak != "" {
				return leak
			}
		}
	}
	return ""
}
