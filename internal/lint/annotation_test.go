package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

const annotatedFixture = "testdata/trustflow/annotated/fixture.go"

// fixtureLines returns the 1-based line numbers of the justified
// annotation, the bare annotation, and the field each covers, located by
// content so the test survives fixture edits.
func fixtureLines(t *testing.T, src string) (justified, justifiedField, bare, bareField int) {
	t.Helper()
	for i, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "//monomi:trusted "):
			justified, justifiedField = i+1, i+2
		case trimmed == "//monomi:trusted":
			bare, bareField = i+1, i+2
		}
	}
	if justified == 0 || bare == 0 {
		t.Fatalf("fixture is missing an annotation form: justified=%d bare=%d", justified, bare)
	}
	return
}

// TestTrustedAnnotation covers the escape hatch end to end: a justified
// //monomi:trusted suppresses the findings on the line it covers, while a
// bare annotation is itself reported and suppresses nothing.
func TestTrustedAnnotation(t *testing.T) {
	src, err := os.ReadFile(annotatedFixture)
	if err != nil {
		t.Fatal(err)
	}
	justified, justifiedField, bare, bareField := fixtureLines(t, string(src))

	pkg := linttest.Load(t, filepath.Dir(annotatedFixture), "repro/internal/engine/lintfixture")
	diags, err := lint.Analyze(pkg, []*lint.Analyzer{lint.Trustflow})
	if err != nil {
		t.Fatal(err)
	}

	// The justified exception passes: nothing on its annotation or field
	// line.
	for _, d := range diags {
		if d.Pos.Line == justified || d.Pos.Line == justifiedField {
			t.Errorf("justified annotation did not suppress:\n  %s", d)
		}
	}
	// The missing justification is rejected...
	linttest.MustFindAt(t, diags, "annotation", "fixture.go", bare)
	found := false
	for _, d := range diags {
		if d.Analyzer == "annotation" && strings.Contains(d.Message, "requires a justification") {
			found = true
		}
	}
	if !found {
		t.Error("no 'requires a justification' diagnostic for the bare annotation")
	}
	// ...and does not suppress the underlying findings.
	linttest.MustFindAt(t, diags, "trustflow", "fixture.go", bareField)
}

// TestTrustedAnnotationRemoved rewrites the fixture without its justified
// annotation and re-analyzes: the previously suppressed findings must
// reappear — the escape hatch is load-bearing, not decorative.
func TestTrustedAnnotationRemoved(t *testing.T) {
	src, err := os.ReadFile(annotatedFixture)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(string(src), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "//monomi:trusted ") {
			continue // strip only the justified form
		}
		kept = append(kept, line)
	}
	stripped := strings.Join(kept, "\n")
	path := filepath.Join(t.TempDir(), "fixture.go")
	if err := os.WriteFile(path, []byte(stripped), 0o666); err != nil {
		t.Fatal(err)
	}

	// Locate the first key field (testRig's) in the stripped source.
	fieldLine := 0
	for i, line := range kept {
		if strings.Contains(line, "key *paillier.Key") {
			fieldLine = i + 1
			break
		}
	}
	if fieldLine == 0 {
		t.Fatal("stripped fixture lost its key field")
	}

	pkg := linttest.LoadGoFiles(t, "repro/internal/engine/lintfixture", path)
	diags, err := lint.Analyze(pkg, []*lint.Analyzer{lint.Trustflow})
	if err != nil {
		t.Fatal(err)
	}
	linttest.MustFindAt(t, diags, "trustflow", "fixture.go", fieldLine)
}
