package lint

import (
	"go/ast"
)

// Lockcrypt keeps big-int cryptography out of critical sections. A single
// Paillier operation is a multi-hundred-microsecond modular
// exponentiation or multiplication chain; performing one while holding a
// mutex turns that mutex into a global crypto serializer. The plan cache
// (PR 7) and the disk backend's block cache (PR 9) sit on the high-QPS
// hot path precisely because their critical sections are pointer swaps —
// Template.Rebind re-encrypts parameters only after the cache lock is
// released, and the singleflight fill plans outside the map lock.
//
// The analyzer walks every function in the module: between a Lock/RLock
// on any sync.Mutex/RWMutex and the matching Unlock (a deferred unlock
// holds to function end), a call to a Paillier crypto entry point —
// paillier Encrypt/Decrypt/ProductCipher/AddCipher/MulConst and friends,
// enc.KeyStore.EncryptValue/DecryptValue, packing
// HomSum/HomSumParallel/BuildStore/ClientSums — is reported. The walk is
// lexical (statements in source order, branch bodies included), which
// matches the Lock/defer-Unlock discipline this codebase uses throughout.
var Lockcrypt = &Analyzer{
	Name: "lockcrypt",
	Doc:  "no Paillier encryption/decryption or homomorphic fold while holding a mutex",
	Run:  runLockcrypt,
}

// cryptoMethods maps receiver-type package path → type name → methods
// that perform big-int crypto.
var cryptoMethods = map[string]map[string]map[string]bool{
	"repro/internal/crypto/paillier": {
		"Key": {
			"Encrypt": true, "EncryptInt64": true, "EncryptZero": true,
			"Decrypt": true, "AddCipher": true, "ProductCipher": true,
			"MulConst": true,
		},
		// The public half carries the homomorphic operations after the
		// PR-10 PublicKey split; same costs, same rule.
		"PublicKey": {
			"Encrypt": true, "EncryptInt64": true, "EncryptZero": true,
			"AddCipher": true, "ProductCipher": true, "MulConst": true,
		},
	},
	"repro/internal/enc": {
		"KeyStore": {"EncryptValue": true, "DecryptValue": true},
	},
}

// cryptoFuncs maps package path → package-level functions that perform
// big-int crypto.
var cryptoFuncs = map[string]map[string]bool{
	"repro/internal/packing": {
		"HomSum": true, "HomSumParallel": true,
		"BuildStore": true, "ClientSums": true,
	},
}

func runLockcrypt(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockRegions(pass, fn.Body)
		}
	}
	return nil
}

// lockEvent is one Lock/Unlock/crypto occurrence in source order.
type lockEvent struct {
	pos      int // byte offset, for ordering
	node     ast.Node
	mutex    string // rendered mutex expression, "" for crypto calls
	kind     int    // 0 lock, 1 unlock, 2 deferred unlock, 3 crypto call
	callName string // crypto callee, for the diagnostic
}

// checkLockRegions scans one function body. Function literals declared
// inside run on their own goroutine or at least on their own call
// schedule, so each literal body is scanned as its own region (a lock
// held at the point a literal is *defined* does not mean it is held when
// the literal runs).
func checkLockRegions(pass *Pass, body *ast.BlockStmt) {
	var events []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkLockRegions(pass, n.Body)
			return false
		case *ast.DeferStmt:
			if mtx, ok := mutexMethodCall(pass, n.Call, "Unlock", "RUnlock"); ok {
				events = append(events, lockEvent{pos: int(n.Pos()), node: n, mutex: mtx, kind: 2})
				// Don't descend: the call below would otherwise be recorded
				// again as an immediate unlock.
				return false
			}
			return true
		case *ast.CallExpr:
			if mtx, ok := mutexMethodCall(pass, n, "Lock", "RLock"); ok {
				events = append(events, lockEvent{pos: int(n.Pos()), node: n, mutex: mtx, kind: 0})
				return true
			}
			if mtx, ok := mutexMethodCall(pass, n, "Unlock", "RUnlock"); ok {
				events = append(events, lockEvent{pos: int(n.Pos()), node: n, mutex: mtx, kind: 1})
				return true
			}
			if name, ok := cryptoCall(pass, n); ok {
				events = append(events, lockEvent{pos: int(n.Pos()), node: n, callName: name, kind: 3})
			}
		}
		return true
	})
	// ast.Inspect visits in source order within a body; sort defensively
	// anyway so region tracking never depends on traversal details.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].pos < events[j-1].pos; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	held := map[string]int{}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			held[ev.mutex]++
		case 1:
			if held[ev.mutex] > 0 {
				held[ev.mutex]--
			}
		case 2:
			// deferred unlock: the lock stays held for the remainder of
			// the scan, which is exactly what the region model wants.
		case 3:
			for mtx, n := range held {
				if n > 0 {
					pass.Reportf(ev.node.Pos(),
						"%s called while holding %s; Paillier work under a mutex serializes the hot path — release the lock first (plan/block caches must stay pointer-swap critical sections)",
						ev.callName, mtx)
					break
				}
			}
		}
	}
}

// mutexMethodCall reports whether call is sel.<name1|name2>() on a
// sync.Mutex or sync.RWMutex (directly or promoted through an embedded
// field), returning a rendered name for the mutex expression.
func mutexMethodCall(pass *Pass, call *ast.CallExpr, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	tn := typeName(tv.Type)
	if tn == nil || tn.Pkg() == nil || tn.Pkg().Path() != "sync" {
		return "", false
	}
	if tn.Name() != "Mutex" && tn.Name() != "RWMutex" {
		return "", false
	}
	return renderExpr(sel.X), true
}

// cryptoCall reports whether call invokes one of the monitored crypto
// entry points, returning a printable callee name.
func cryptoCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	// Package-level function?
	if fns := cryptoFuncs[obj.Pkg().Path()]; fns != nil && fns[obj.Name()] && obj.Parent() == obj.Pkg().Scope() {
		return obj.Pkg().Name() + "." + obj.Name(), true
	}
	// Method on a monitored type?
	byType := cryptoMethods[obj.Pkg().Path()]
	if byType == nil {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	tn := typeName(tv.Type)
	if tn == nil {
		return "", false
	}
	if methods := byType[tn.Name()]; methods != nil && methods[obj.Name()] {
		return "(" + tn.Pkg().Name() + "." + tn.Name() + ")." + obj.Name(), true
	}
	return "", false
}

// renderExpr renders a selector/ident chain for diagnostics ("pc.mu");
// non-chain expressions render as "<mutex>".
func renderExpr(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return renderExpr(t.X) + "." + t.Sel.Name
	case *ast.ParenExpr:
		return renderExpr(t.X)
	case *ast.StarExpr:
		return renderExpr(t.X)
	}
	return "<mutex>"
}
