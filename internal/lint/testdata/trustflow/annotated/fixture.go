// Package fixture exercises the //monomi:trusted escape hatch. The test
// loads it as an untrusted package path; assertions live in
// annotation_test.go rather than in expectation comments here, because
// the annotation marker is itself a line comment and cannot share its
// line with another comment.
package fixture

import (
	"repro/internal/crypto/paillier"
)

// testRig stands in for the in-process trusted-client half of a test
// harness: a justified annotation keeps the analyzer quiet on the field.
type testRig struct {
	//monomi:trusted in-process trusted-client rig for differential tests; the key never serializes
	key *paillier.Key
}

// badRig carries the annotation without a justification: the exception is
// rejected (reported by the "annotation" pseudo-analyzer) and the
// underlying trustflow findings still fire.
type badRig struct {
	//monomi:trusted
	key *paillier.Key
}
