// Package fixture plants deliberate trust-boundary violations. The test
// loads it AS an untrusted package path (repro/internal/engine/lintfixture),
// so every reference below must be reported.
package fixture

import (
	"repro/internal/crypto/paillier"
	"repro/internal/crypto/prf" // want `imports keyed crypto package repro/internal/crypto/prf`
	"repro/internal/enc"
	"repro/internal/packing"
)

// serverState smuggles the private key inside a struct, the shape the
// pre-PR-10 packing.Store had.
type serverState struct {
	key *paillier.Key // want `references trusted-only symbol repro/internal/crypto/paillier.Key` `transitively contains trusted-only type repro/internal/crypto/paillier.Key`
}

// holder leaks transitively: no banned identifier is spelled here, only a
// type that contains one.
type holder struct {
	inner serverState // want `transitively contains trusted-only type repro/internal/crypto/paillier.Key`
}

// useKeyStore references the keystore type and constructor directly.
func useKeyStore(master []byte) error {
	ks, err := enc.NewKeyStore(master, 256) // want `references trusted-only symbol repro/internal/enc.NewKeyStore` `holds a value of type \*repro/internal/enc.KeyStore`
	if err != nil {
		return err
	}
	_ = ks
	return nil
}

// deriveKey uses the master-key derivation helper.
func deriveKey(master []byte) []byte {
	return prf.DeriveKey(master, "label") // want `references trusted-only symbol repro/internal/crypto/prf.DeriveKey`
}

// clientFinish performs a client-side decryption step on the server.
func clientFinish(key *paillier.Key, layout packing.Layout, res *packing.SumResult) { // want `references trusted-only symbol repro/internal/crypto/paillier.Key` `holds a value of type \*repro/internal/crypto/paillier.Key`
	sums, n, err := packing.ClientSums(key, layout, res, nil) // want `references trusted-only symbol repro/internal/packing.ClientSums`
	_, _, _ = sums, n, err
}
