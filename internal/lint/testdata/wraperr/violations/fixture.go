// Package fixture plants error-flattening violations. The test loads it
// as repro/internal/storage/lintfixture, inside the wraperr scope.
package fixture

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

// flattenV loses the chain: %v renders the cause as text, so errors.Is
// can no longer see it.
func flattenV(err error) error {
	return fmt.Errorf("read segment 7: %v", err) // want `error flattened with %v in fmt.Errorf; use %w`
}

// flattenS is equally broken.
func flattenS(err error) error {
	return fmt.Errorf("open store: %s", err) // want `error flattened with %s in fmt.Errorf`
}

// wrapped is the required form: no finding.
func wrapped(err error) error {
	return fmt.Errorf("read segment 7: %w", err)
}

// nonError arguments may use %v freely.
func nonError(n int) error {
	return fmt.Errorf("segment %d out of range: limit %v", n, 64)
}

// mixed pairs verbs to arguments positionally: only the error arg trips.
func mixed(n int, err error) error {
	return fmt.Errorf("segment %d: %v", n, err) // want `error flattened with %v`
}

// segErr is a custom error type; anything satisfying error must wrap.
type segErr struct{ id int }

func (e *segErr) Error() string { return fmt.Sprintf("segment %d", e.id) }

func custom(e *segErr) error {
	return fmt.Errorf("checksum: %v", e) // want `error flattened with %v`
}

// sentinelUse keeps errSentinel referenced and shows the clean pattern
// the storage layer uses for its own typed sentinels.
func sentinelUse() error {
	return fmt.Errorf("shutting down: %w", errSentinel)
}
