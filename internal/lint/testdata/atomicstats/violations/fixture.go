// Package fixture plants stats-accounting races: direct writes from
// go-spawned workers to a captured engine.Stats, the exact shape PR 5's
// single-writer rule bans. The test loads it as
// repro/internal/engine/lintfixture, inside the atomicstats scope.
package fixture

import (
	"sync"
	"sync/atomic"

	"repro/internal/engine"
)

// sharedDirect is the canonical race: a worker writes the coordinator's
// Stats directly.
func sharedDirect() {
	var shared engine.Stats
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		shared.RowsScanned++       // want `increment/decrement of engine.Stats field RowsScanned captured by a go-spawned worker`
		shared.BytesScanned += 128 // want `compound assignment of engine.Stats field BytesScanned captured by a go-spawned worker`
		shared.RowsOut = 1         // want `assignment of engine.Stats field RowsOut captured by a go-spawned worker`
	}()
	wg.Wait()
}

// viaVariable spawns through an intermediate variable; the analyzer
// follows fn := func(){...}; go fn().
func viaVariable(shared *engine.Stats) {
	fn := func() {
		shared.UDFNanos += 7 // want `compound assignment of engine.Stats field UDFNanos captured by a go-spawned worker`
	}
	go fn()
}

// workerLocal is the sanctioned pattern: accumulate into a private Stats
// declared inside the goroutine, hand the delta to the single merger.
func workerLocal(merge chan<- engine.Stats) {
	go func() {
		var local engine.Stats
		local.RowsScanned++
		local.BytesScanned += 64
		merge <- local
	}()
}

// atomicShared updates a genuinely shared counter through sync/atomic —
// the discipline the server's UDF timing uses.
func atomicShared(shared *engine.Stats) {
	go func() {
		atomic.AddInt64(&shared.UDFNanos, 5)
	}()
}

// mergeViaAdd merges a worker-local delta through the Stats.Add method;
// method calls are the documented merge path, not direct field writes.
func mergeViaAdd(shared *engine.Stats, mu *sync.Mutex) {
	go func() {
		var local engine.Stats
		local.RowsOut++
		mu.Lock()
		defer mu.Unlock()
		shared.Add(local)
	}()
}
