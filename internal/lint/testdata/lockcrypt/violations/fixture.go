// Package fixture plants crypto-under-lock violations. Lockcrypt is not
// package-scoped, so the test loads it at a neutral path
// (repro/internal/client/lintfixture).
package fixture

import (
	"math/big"
	"sync"

	"repro/internal/crypto/paillier"
	"repro/internal/packing"
)

type cache struct {
	mu  sync.Mutex
	key *paillier.PublicKey
}

// underLock performs the homomorphic fold inside the critical section.
func (c *cache) underLock(a, b *big.Int) *big.Int {
	c.mu.Lock()
	s := c.key.AddCipher(a, b) // want `\(paillier\.PublicKey\)\.AddCipher called while holding c\.mu`
	c.mu.Unlock()
	return s
}

// underDefer: a deferred unlock holds the lock to function end.
func (c *cache) underDefer(cs []*big.Int) *big.Int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.key.ProductCipher(cs) // want `\(paillier\.PublicKey\)\.ProductCipher called while holding c\.mu`
}

// afterUnlock releases first — the pointer-swap pattern the plan cache
// and block cache use. No finding.
func (c *cache) afterUnlock(a, b *big.Int) *big.Int {
	c.mu.Lock()
	k := c.key
	c.mu.Unlock()
	return k.AddCipher(a, b)
}

// spawnedLiteral: a literal defined while the lock is held runs on its
// own schedule, so its body is a separate lock region. No finding.
func (c *cache) spawnedLiteral(a, b *big.Int) func() *big.Int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() *big.Int { return c.key.AddCipher(a, b) }
}

// sumUnderLock calls a package-level crypto entry point under a plain
// mutex.
func sumUnderLock(mu *sync.Mutex, s *packing.Store, ids []int) {
	mu.Lock()
	defer mu.Unlock()
	_, _ = packing.HomSum(s, ids) // want `packing\.HomSum called while holding mu`
}

// rwRead holds an RLock across a fold — read locks serialize writers just
// the same.
func rwRead(mu *sync.RWMutex, key *paillier.PublicKey, cs []*big.Int) *big.Int {
	mu.RLock()
	defer mu.RUnlock()
	return key.ProductCipher(cs) // want `\(paillier\.PublicKey\)\.ProductCipher called while holding mu`
}
