// Package linttest runs internal/lint analyzers over testdata fixture
// packages, in the style of golang.org/x/tools/go/analysis/analysistest:
// fixture files carry `// want "regexp"` comments on the lines where a
// diagnostic is expected, and the runner fails the test on any unmatched
// expectation or unexpected diagnostic.
//
// Fixtures are plain Go files under testdata/ (which the go tool never
// builds), type-checked against the real module: a fixture may import
// repro/internal/enc, repro/internal/crypto/paillier, etc., and is
// compiled *as if* it lived at any import path the test chooses — which
// is how trustflow fixtures place themselves inside the untrusted
// subtree (e.g. "repro/internal/engine/lintfixture") without polluting
// the real packages.
package linttest

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// moduleExports caches the module-wide export map across tests; `go list
// -export ./...` is the slow step and its result is identical for every
// fixture.
var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// exports returns the cached module export map.
func exports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		exportsMap, exportsErr = lint.ModuleExports(moduleRoot(t))
	})
	if exportsErr != nil {
		t.Fatal(exportsErr)
	}
	return exportsMap
}

// Load type-checks the fixture directory as one package rooted at
// asImportPath and returns it. Fails the test on load errors.
func Load(t *testing.T, fixtureDir, asImportPath string) *lint.Package {
	t.Helper()
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(fixtureDir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files in %s", fixtureDir)
	}
	sort.Strings(files)
	pkg, err := lint.LoadFiles(asImportPath, files, exports(t))
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	if pkg == nil {
		t.Fatalf("linttest: %s produced no package", fixtureDir)
	}
	return pkg
}

// LoadGoFiles type-checks an explicit list of Go files (possibly outside
// testdata, e.g. in a t.TempDir) as one package at asImportPath. Used by
// tests that rewrite a fixture — say, stripping its //monomi:trusted
// annotation — and re-analyze the result.
func LoadGoFiles(t *testing.T, asImportPath string, files ...string) *lint.Package {
	t.Helper()
	pkg, err := lint.LoadFiles(asImportPath, files, exports(t))
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	if pkg == nil {
		t.Fatalf("linttest: %v produced no package", files)
	}
	return pkg
}

// want is one expectation parsed from a `// want "re"` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var (
	// wantRE finds a want comment; one comment may carry several
	// space-separated patterns, each backquoted or double-quoted.
	wantRE    = regexp.MustCompile(`//\s*want\s+(.+)$`)
	wantPatRE = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)
)

// parseWants extracts expectations from the fixture's comments.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pats := wantPatRE.FindAllString(m[1], -1)
				if len(pats) == 0 {
					t.Fatalf("linttest: want comment with no quoted pattern: %s", c.Text)
				}
				for _, quoted := range pats {
					pat, err := strconv.Unquote(quoted)
					if err != nil {
						t.Fatalf("linttest: bad want pattern %s: %v", quoted, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("linttest: bad want regexp %q: %v", pat, err)
					}
					pos := fset.Position(c.Pos())
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

// Run loads the fixture as asImportPath, runs the analyzer, and checks
// every diagnostic against the fixture's `// want` expectations — each
// expectation must match exactly one diagnostic on its line and vice
// versa. It returns the surviving diagnostics for extra assertions.
func Run(t *testing.T, fixtureDir, asImportPath string, analyzers ...*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	pkg := Load(t, fixtureDir, asImportPath)
	diags, err := lint.Analyze(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, pkg.Fset, pkg.Files)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) || w.re.MatchString("["+d.Analyzer+"] "+d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no diagnostic matched want %q at %s:%d", w.raw, w.file, w.line)
		}
	}
	return diags
}

// MustFindAt asserts that some diagnostic of the given analyzer lands on
// file:line (basename match), for tests that assert positions directly.
func MustFindAt(t *testing.T, diags []lint.Diagnostic, analyzer, file string, line int) {
	t.Helper()
	for _, d := range diags {
		if d.Analyzer == analyzer && filepath.Base(d.Pos.Filename) == file && d.Pos.Line == line {
			return
		}
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	t.Errorf("no %s diagnostic at %s:%d; got:\n  %s", analyzer, file, line, strings.Join(got, "\n  "))
}
