package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestTrustflowViolations loads a fixture full of planted trust-boundary
// violations as an untrusted package path and checks every finding lands
// on the expected line (the fixture's want comments) — banned imports,
// direct trusted-only references, and transitive type containment.
func TestTrustflowViolations(t *testing.T) {
	diags := linttest.Run(t, "testdata/trustflow/violations", "repro/internal/engine/lintfixture", lint.Trustflow)
	if len(diags) != 10 {
		t.Errorf("got %d diagnostics, fixture plants 10", len(diags))
	}
	linttest.MustFindAt(t, diags, "trustflow", "fixture.go", 8)  // banned prf import
	linttest.MustFindAt(t, diags, "trustflow", "fixture.go", 22) // transitive containment via holder.inner
}

// TestTrustflowScopedToUntrusted loads the same violating fixture at a
// trusted (client-side) import path: the analyzer must stay silent —
// holding keys is the trusted client's job.
func TestTrustflowScopedToUntrusted(t *testing.T) {
	pkg := linttest.Load(t, "testdata/trustflow/violations", "repro/internal/client/lintfixture")
	diags, err := lint.Analyze(pkg, []*lint.Analyzer{lint.Trustflow})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic on trusted path:\n  %s", d)
	}
}
