// Package lint is MONOMI's static-analysis suite: four custom analyzers
// that enforce, at compile time, the invariants the paper's trust model
// (§3) and this repo's concurrency/error-handling contracts rest on but
// that no test can prove:
//
//   - trustflow: plaintext-bearing secrets — enc.KeyStore, the Paillier
//     private key, the keyed DET/OPE/RND/SEARCH scheme objects, and the
//     client-side decryption helpers — never flow into the untrusted
//     server-side packages (engine, storage, transport, wire, netsim,
//     server). See trustflow.go.
//   - wraperr: errors crossing the storage/transport package boundaries
//     wrap their cause with %w (errors.Is/As must see typed sentinels
//     like storage.ErrCorruptSegment and transport.RejectError through
//     every layer). See wraperr.go.
//   - atomicstats: engine.Stats / server.StreamStats fields captured by
//     go-spawned shard workers must be updated atomically — the class of
//     race PR 5 fixed by hand in the sharded stream producer. See
//     atomicstats.go.
//   - lockcrypt: no Paillier encryption/decryption or homomorphic fold
//     while holding a mutex — the plan-cache and block-cache hot paths
//     must never serialize big-int crypto behind a lock. See lockcrypt.go.
//
// The framework below is a deliberately small, dependency-free mirror of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic): the
// container this repo builds in has no module proxy access, so the suite
// runs on the standard library alone. Packages are loaded either from
// `go list -export` output (standalone mode) or from a cmd/go vet.cfg
// (go vet -vettool mode); both feed the same type-checked Pass.
//
// # Escape hatch
//
// A finding that is intentional — for example a test harness package that
// legitimately holds keys — can be suppressed with an annotation comment
// on the offending line or the line directly above it:
//
//	//monomi:trusted reason this package is the trusted-client test rig
//
// The justification text is mandatory: an annotation without one is
// itself reported, so every exception to the trust boundary is
// self-documenting. Annotations are honored by all four analyzers.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer so the suite could be rehosted
// on the real driver without touching analyzer logic.
type Analyzer struct {
	Name string // short lower-case identifier, used in diagnostics and flags
	Doc  string // one-paragraph description of what the check enforces
	Run  func(*Pass) error
}

// All is the monomi-lint suite in reporting order.
var All = []*Analyzer{Trustflow, Wraperr, Atomicstats, Lockcrypt}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Pass carries one type-checked package through one analyzer. Report
// appends to the harness's diagnostic list; annotation suppression is
// applied by the harness, not the analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test source files, parsed with comments
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Posn     string         `json:"pos"` // Pos rendered as file:line:col
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// trustedAnnotation is the escape-hatch comment prefix. The rest of the
// comment line is the mandatory justification.
const trustedAnnotation = "//monomi:trusted"

// annotation is one parsed //monomi:trusted comment.
type annotation struct {
	pos           token.Position
	justification string
}

// parseAnnotations collects the //monomi:trusted annotations of a file,
// keyed by the lines they cover: the annotation's own line and, for a
// comment that stands alone on its line, the following line.
func parseAnnotations(fset *token.FileSet, f *ast.File) map[int]annotation {
	out := map[int]annotation{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, trustedAnnotation) {
				continue
			}
			rest := c.Text[len(trustedAnnotation):]
			a := annotation{
				pos:           fset.Position(c.Pos()),
				justification: strings.TrimSpace(rest),
			}
			// A justification must be separated from the marker; an
			// unseparated suffix (//monomi:trustedX) is not an annotation.
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			// The annotation covers its own line (trailing-comment form)
			// and the line below it (line-above form).
			out[a.pos.Line] = a
			out[a.pos.Line+1] = a
		}
	}
	return out
}

// Analyze runs the given analyzers over one loaded package and returns
// surviving diagnostics plus any annotation hygiene findings. Findings on
// a line covered by a justified //monomi:trusted annotation are dropped;
// annotations with no justification are reported (analyzer "annotation")
// so the escape hatch cannot silently widen.
func Analyze(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	annots := map[string]map[int]annotation{} // filename → line → annotation
	var diags []Diagnostic
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		m := parseAnnotations(pkg.Fset, f)
		annots[name] = m
		seen := map[int]bool{}
		for _, a := range m {
			if seen[a.pos.Line] {
				continue
			}
			seen[a.pos.Line] = true
			if a.justification == "" {
				diags = append(diags, Diagnostic{
					Analyzer: "annotation",
					Pos:      a.pos,
					Message:  "monomi:trusted annotation requires a justification (\"//monomi:trusted <why this crosses the boundary>\")",
				})
			}
		}
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report: func(d Diagnostic) {
				if m := annots[d.Pos.Filename]; m != nil {
					if an, ok := m[d.Pos.Line]; ok && an.justification != "" {
						return // justified exception
					}
				}
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	for i := range diags {
		diags[i].Posn = diags[i].Pos.String()
	}
	return diags, nil
}

// pathHasPrefix reports whether an import path equals prefix or lives in
// its subtree (prefix "a/b" matches "a/b" and "a/b/c", never "a/bc").
func pathHasPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// errorType is the universe error interface, for implements checks.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}
