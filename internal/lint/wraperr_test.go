package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestWraperrViolations checks that %v/%s flattening of error-typed
// fmt.Errorf arguments is reported inside the storage subtree, while %w,
// non-error arguments, and positional mixing stay clean.
func TestWraperrViolations(t *testing.T) {
	diags := linttest.Run(t, "testdata/wraperr/violations", "repro/internal/storage/lintfixture", lint.Wraperr)
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, fixture plants 4", len(diags))
	}
}

// TestWraperrScoped loads the same fixture outside the storage/transport
// subtrees: client-side formatting is free to flatten.
func TestWraperrScoped(t *testing.T) {
	pkg := linttest.Load(t, "testdata/wraperr/violations", "repro/internal/client/lintfixture")
	diags, err := lint.Analyze(pkg, []*lint.Analyzer{lint.Wraperr})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside wraperr scope:\n  %s", d)
	}
}
