package lint

import (
	"go/ast"
	"go/types"
)

// Atomicstats guards the stats-accounting concurrency contract of the
// sharded executors. engine.Stats and server.StreamStats are plain-int
// accumulators by design: the documented single-writer discipline (PR 5)
// says shard workers accumulate into their own private Stats and a single
// merger folds deltas via Stats.Add/Sub — workers never write a shared
// Stats directly, and the few genuinely shared counters (the UDF timing
// the server folds from inside worker-invoked callbacks) use sync/atomic.
//
// The analyzer enforces the discipline mechanically: inside the engine
// and server subtrees, a direct write (assignment, compound assignment,
// ++/--) to a field of a Stats/StreamStats value that was CAPTURED from
// an enclosing scope by a go-spawned function literal is reported — that
// is exactly the shape of the data race PR 5 had to fix by hand. Writes
// to worker-local stats (declared or received as a parameter inside the
// goroutine) and merges through methods remain free.
var Atomicstats = &Analyzer{
	Name: "atomicstats",
	Doc:  "go-spawned workers must not write captured engine.Stats/server.StreamStats fields non-atomically",
	Run:  runAtomicstats,
}

// atomicstatsPackages are the subtrees whose goroutines the check covers.
var atomicstatsPackages = []string{
	"repro/internal/engine",
	"repro/internal/server",
}

// statsTypeNames are the monitored accumulator struct names.
var statsTypeNames = map[string]bool{"Stats": true, "StreamStats": true}

// isStatsType reports whether t (possibly behind pointers) is one of the
// monitored accumulator types from the engine/server subtrees.
func isStatsType(t types.Type) bool {
	tn := typeName(t)
	if tn == nil || tn.Pkg() == nil || !statsTypeNames[tn.Name()] {
		return false
	}
	for _, p := range atomicstatsPackages {
		if pathHasPrefix(tn.Pkg().Path(), p) {
			return true
		}
	}
	return false
}

func runAtomicstats(pass *Pass) error {
	inScope := false
	for _, p := range atomicstatsPackages {
		if pathHasPrefix(pass.Pkg.Path(), p) {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		// Collect the function literals this file spawns with `go`,
		// either directly (go func(){...}()) or through a variable
		// assigned a literal in the same file (fn := func(){...}; go fn()).
		spawned := map[*ast.FuncLit]bool{}
		litOfVar := map[types.Object]*ast.FuncLit{}
		ast.Inspect(f, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				for i, rhs := range as.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(as.Lhs) {
						continue
					}
					if id, ok := as.Lhs[i].(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							litOfVar[obj] = lit
						} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
							litOfVar[obj] = lit
						}
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				spawned[fun] = true
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[fun]; obj != nil {
					if lit := litOfVar[obj]; lit != nil {
						spawned[lit] = true
					}
				}
			}
			return true
		})
		for lit := range spawned {
			checkSpawnedStatsWrites(pass, lit)
		}
	}
	return nil
}

// checkSpawnedStatsWrites reports non-atomic writes to captured
// Stats/StreamStats fields anywhere inside a go-spawned literal
// (including its nested literals — they run on the same goroutine or a
// descendant of it).
func checkSpawnedStatsWrites(pass *Pass, lit *ast.FuncLit) {
	report := func(sel *ast.SelectorExpr, how string) {
		pass.Reportf(sel.Pos(),
			"%s of %s field %s captured by a go-spawned worker; use sync/atomic or accumulate into a worker-local Stats and merge via Add (single-writer rule, PR 5)",
			how, types.TypeString(derefType(pass.TypesInfo.Types[sel.X].Type), relativeTo(pass.Pkg)), sel.Sel.Name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel := capturedStatsField(pass, lit, lhs); sel != nil {
					how := "assignment"
					if n.Tok.String() != "=" {
						how = "compound assignment"
					}
					report(sel, how)
				}
			}
		case *ast.IncDecStmt:
			if sel := capturedStatsField(pass, lit, n.X); sel != nil {
				report(sel, "increment/decrement")
			}
		}
		return true
	})
}

// capturedStatsField reports whether expr writes a field of a monitored
// stats struct whose root variable is captured from outside lit. Returns
// the field selector when it does.
func capturedStatsField(pass *Pass, lit *ast.FuncLit, expr ast.Expr) *ast.SelectorExpr {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !isStatsType(tv.Type) {
		return nil
	}
	root := rootIdent(sel.X)
	if root == nil {
		return nil // rooted in a call/index expression: not a shared variable
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		return nil
	}
	if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
		return nil // declared inside the literal (worker-local or parameter)
	}
	return sel
}

// rootIdent walks to the base identifier of a selector/star chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// derefType unwraps pointers.
func derefType(t types.Type) types.Type {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// relativeTo qualifies type names relative to pkg (its own types print
// bare).
func relativeTo(pkg *types.Package) types.Qualifier {
	return func(other *types.Package) string {
		if other == pkg {
			return ""
		}
		return other.Name()
	}
}
