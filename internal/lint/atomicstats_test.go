package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestAtomicstatsViolations checks that direct writes to captured
// engine.Stats fields inside go-spawned literals are reported — including
// literals spawned through a variable — while worker-local accumulation,
// sync/atomic updates, and Add-method merges stay clean.
func TestAtomicstatsViolations(t *testing.T) {
	diags := linttest.Run(t, "testdata/atomicstats/violations", "repro/internal/engine/lintfixture", lint.Atomicstats)
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, fixture plants 4", len(diags))
	}
}
