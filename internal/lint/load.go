package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked target ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// exportLookup builds a go/importer lookup function over a package-path →
// export-file map (from `go list -export` or a vet.cfg PackageFile map).
// importMap translates source-spelling import paths (vendoring, test
// variants) to canonical ones; nil means identity.
func exportLookup(exports, importMap map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for import %q", path)
		}
		return os.Open(f)
	}
}

// typeCheck parses and checks one package's files under the given
// importer lookup. Test files (*_test.go) are skipped: the differential
// and transport test harnesses deliberately run both sides of the trust
// boundary in one process, so the boundary checks apply to shipped code.
func typeCheck(fset *token.FileSet, importPath, dir string, goFiles []string, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	var files []*ast.File
	for _, g := range goFiles {
		if strings.HasSuffix(g, "_test.go") {
			continue
		}
		if !filepath.IsAbs(g) {
			g = filepath.Join(dir, g)
		}
		f, err := parser.ParseFile(fset, g, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", g, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// goList runs `go list -export -deps -json` for the patterns and returns
// the decoded packages.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPackages loads and type-checks the packages matching the go list
// patterns, rooted at dir (the module directory). Compilation happens via
// the go command; types of dependencies come from its export data, so a
// load is roughly as fast as `go vet`.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	lookup := exportLookup(exports, nil)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		pkg, err := typeCheck(fset, p.ImportPath, p.Dir, p.GoFiles, lookup)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// ModuleExports loads the export-data map for every package of the module
// at dir plus its dependencies, for type-checking out-of-tree fixture
// files that import module packages (see linttest).
func ModuleExports(dir string) (map[string]string, error) {
	listed, err := goList(dir, []string{"./..."})
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// LoadFiles type-checks a set of Go files as one package with the given
// import path, resolving imports through the provided export map. Used by
// linttest to compile testdata fixtures as if they lived at an arbitrary
// point of the package tree (e.g. inside an untrusted package).
func LoadFiles(asImportPath string, goFiles []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	abs := make([]string, len(goFiles))
	for i, g := range goFiles {
		a, err := filepath.Abs(g)
		if err != nil {
			return nil, fmt.Errorf("lint: resolving %s: %w", g, err)
		}
		abs[i] = a
	}
	dir := ""
	if len(abs) > 0 {
		dir = filepath.Dir(abs[0])
	}
	return typeCheck(fset, asImportPath, dir, abs, exportLookup(exports, nil))
}

// VetConfig is the per-package configuration cmd/go writes for a vet tool
// (see $GOROOT/src/cmd/go/internal/work/exec.go, type vetConfig). Fields
// the suite does not need are omitted; unknown JSON keys are ignored.
type VetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// LoadVetConfig loads the single package described by a cmd/go vet.cfg
// file — the `go vet -vettool=monomi-lint` entry point. Returns (nil,
// nil, nil) for packages with nothing to analyze (e.g. pure test
// variants, or VetxOnly dependency passes).
func LoadVetConfig(cfgPath string) (*Package, *VetConfig, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: reading vet config: %w", err)
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, nil, fmt.Errorf("lint: parsing vet config %s: %w", cfgPath, err)
	}
	if cfg.VetxOnly {
		return nil, &cfg, nil
	}
	fset := token.NewFileSet()
	pkg, err := typeCheck(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, exportLookup(cfg.PackageFile, cfg.ImportMap))
	if err != nil {
		return nil, &cfg, err
	}
	return pkg, &cfg, nil
}
