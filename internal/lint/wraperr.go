package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Wraperr enforces the error-wrapping contract of the packages whose
// errors cross process and layer boundaries: in internal/storage and
// internal/transport, a fmt.Errorf that includes an underlying error must
// wrap it with %w, never flatten it with %v/%s. Flattening breaks
// errors.Is/errors.As on the typed sentinels these layers export —
// storage.ErrCorruptSegment (every disk-integrity failure) and
// transport.RejectError (admission control) are matched by the client,
// the facade (monomi.IsRejected), and the CI robustness suites; a single
// %v in the chain silently turns those matches into dead code.
var Wraperr = &Analyzer{
	Name: "wraperr",
	Doc:  "errors crossing storage/transport boundaries must be wrapped with %w, not flattened with %v or %s",
	Run:  runWraperr,
}

// wraperrPackages are the subtrees whose errors must stay errors.Is-able.
var wraperrPackages = []string{
	"repro/internal/storage",
	"repro/internal/transport",
}

func runWraperr(pass *Pass) error {
	inScope := false
	for _, p := range wraperrPackages {
		if pathHasPrefix(pass.Pkg.Path(), p) {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isPkgFunc(pass, call.Fun, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			format, ok := constantString(pass, call.Args[0])
			if !ok {
				return true
			}
			verbs, exotic := formatVerbs(format)
			if exotic {
				return true // explicit indexes or * widths: don't guess
			}
			args := call.Args[1:]
			for i, verb := range verbs {
				if i >= len(args) {
					break // argument-count mismatch; go vet printf reports it
				}
				tv, ok := pass.TypesInfo.Types[args[i]]
				if !ok || tv.Type == nil {
					continue
				}
				if !implementsError(tv.Type) {
					continue
				}
				if verb != 'w' {
					pass.Reportf(args[i].Pos(),
						"error flattened with %%%c in fmt.Errorf; use %%w so errors.Is/As see the cause through this %s boundary",
						verb, strings.TrimPrefix(pass.Pkg.Path(), "repro/internal/"))
				}
			}
			return true
		})
	}
	return nil
}

// isPkgFunc reports whether fun resolves to the package-level function
// pkg.name (by import path).
func isPkgFunc(pass *Pass, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// constantString returns the compile-time string value of e, if any.
func constantString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs extracts the argument-consuming verbs of a printf format in
// order. exotic is true when the format uses features (explicit argument
// indexes, * widths) that break the simple verb↔argument pairing.
func formatVerbs(format string) (verbs []rune, exotic bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '*' || c == '[' {
				return nil, true
			}
			if strings.ContainsRune("+-# 0.0123456789", rune(c)) {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		verbs = append(verbs, rune(format[i]))
	}
	return verbs, false
}

// typeName returns t's named-type object, unwrapping pointers, or nil.
func typeName(t types.Type) *types.TypeName {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj()
		default:
			return nil
		}
	}
}
