package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestLockcryptViolations checks that Paillier operations and packing
// entry points invoked while a sync.Mutex/RWMutex is held — including
// under a deferred unlock — are reported, while unlock-first code and
// function literals defined under the lock stay clean.
func TestLockcryptViolations(t *testing.T) {
	diags := linttest.Run(t, "testdata/lockcrypt/violations", "repro/internal/client/lintfixture", lint.Lockcrypt)
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, fixture plants 4", len(diags))
	}
}
