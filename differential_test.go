package monomi

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// Differential property test: a seeded random query generator runs the same
// queries through the plaintext engine and the encrypted split-execution
// path and requires identical results — crossing parallelism levels with
// engine streaming on/off and the streamed wire on/off, so the sharded
// engine, the AggState merge path, the batched Paillier aggregation, the
// batch-at-a-time scan pipeline, and the streamed wire protocol (server
// framing batches mid-scan, client decrypting them on concurrent workers)
// are all exercised against the sequential materialized baseline.

const (
	diffRows    = 260 // enough rows that sharding kicks in (minShardRows*2 per shard)
	diffQueries = 24  // random queries per template set
	diffSeed    = 20130826
)

// diffBatchSizes crosses materialized execution (0) with a streamed batch
// size small enough that diffRows spans several batches, exercising
// batch-boundary filters inside every generated query.
var diffBatchSizes = []int{0, 64}

// diffStreamWire crosses the materialized wire with the streamed wire
// (server frames encrypted batches mid-scan; client decrypts them on
// Parallelism workers, merging in batch order).
var diffStreamWire = []bool{false, true}

// diffSystem builds sales(s_id, s_cat, s_qty, s_price, s_date) — plus
// cats(c_name, c_region, c_tier), a dimension table joining on s_cat =
// c_name with duplicate and NULL join keys — with seeded random rows, and
// encrypts them under a workload broad enough that the designer
// materializes DET, OPE, and HOM columns and a shared-key DET join group
// for the join columns.
func diffSystem(t testing.TB) *System {
	t.Helper()
	return diffSystemBackend(t, "")
}

// diffSystemBackend is diffSystem with an explicit storage backend for the
// encrypted tables ("" = in-memory). The disk variant uses small pages and
// a block cache much smaller than the encrypted tables, so the grid runs
// with real page churn, not an all-resident cache.
func diffSystemBackend(t testing.TB, backend string) *System {
	t.Helper()
	rng := rand.New(rand.NewSource(diffSeed))
	db := NewDatabase()
	db.MustCreateTable("sales",
		Col("s_id", Int), Col("s_cat", String), Col("s_qty", Int),
		Col("s_price", Int), Col("s_date", Date))
	cats := []string{"ale", "bock", "cider", "dubbel", "export"}
	for i := 0; i < diffRows; i++ {
		date := fmt.Sprintf("19%02d-%02d-%02d", 95+rng.Intn(4), 1+rng.Intn(12), 1+rng.Intn(28))
		db.MustInsert("sales", i, cats[rng.Intn(len(cats))], int(rng.Int63n(50)),
			int(rng.Int63n(1000)), date)
	}
	db.MustCreateTable("cats",
		Col("c_name", String), Col("c_region", String), Col("c_tier", Int))
	regions := []string{"north", "south", "east"}
	tier := 0
	for _, name := range cats {
		// 1–2 rows per category: duplicate build-side keys multiply probe
		// matches.
		for k := 0; k <= tier%2; k++ {
			db.MustInsert("cats", name, regions[tier%len(regions)], tier)
			tier++
		}
	}
	// NULL join keys must match nothing on either wire.
	db.MustInsert("cats", nil, "nowhere", tier)
	db.MustInsert("cats", nil, "nowhere", tier+1)
	opts := DefaultOptions()
	opts.PaillierBits = 256 // fast tests
	opts.SpaceBudget = 0    // unconstrained: materialize what the workload wants
	if backend != "" {
		opts.Backend = backend
		opts.DataDir = t.TempDir()
		opts.PageBytes = 1024
		opts.BlockCacheBytes = 16 << 10
	}
	sys, err := Encrypt(db, Workload{
		"sum_by_cat": "SELECT s_cat, SUM(s_price), SUM(s_qty), COUNT(*) FROM sales GROUP BY s_cat",
		"filter_ope": "SELECT s_id, s_price FROM sales WHERE s_qty < 10 AND s_price > 500",
		"date_range": "SELECT SUM(s_price) FROM sales WHERE s_date < date '1997-01-01'",
		"cat_eq":     "SELECT COUNT(*) FROM sales WHERE s_cat = 'ale'",
		"minmax":     "SELECT s_cat, MIN(s_price), MAX(s_price), AVG(s_qty) FROM sales GROUP BY s_cat",
		"join_cat":   "SELECT s_id, c_region, c_tier FROM sales, cats WHERE s_cat = c_name AND c_tier < 4",
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// diffQuery is one generated query plus whether its ORDER BY imposes a
// total order (making row order part of the contract).
type diffQuery struct {
	sql     string
	ordered bool
}

// genQueries derives random filters over the sales schema and splices them
// into aggregate/projection templates covering filters, GROUP BY, ORDER BY,
// and SUM/COUNT/AVG/MIN/MAX.
func genQueries(rng *rand.Rand, n int) []diffQuery {
	pred := func() string {
		var conjs []string
		for k := 0; k <= rng.Intn(2); k++ {
			switch rng.Intn(5) {
			case 0:
				conjs = append(conjs, fmt.Sprintf("s_qty < %d", 5+rng.Intn(45)))
			case 1:
				lo := rng.Intn(500)
				conjs = append(conjs, fmt.Sprintf("s_price BETWEEN %d AND %d", lo, lo+100+rng.Intn(500)))
			case 2:
				cats := []string{"ale", "bock", "cider", "dubbel", "export"}
				conjs = append(conjs, fmt.Sprintf("s_cat = '%s'", cats[rng.Intn(len(cats))]))
			case 3:
				conjs = append(conjs, fmt.Sprintf("s_date < date '19%02d-06-15'", 96+rng.Intn(3)))
			default:
				conjs = append(conjs, fmt.Sprintf("s_price >= %d", rng.Intn(900)))
			}
		}
		return strings.Join(conjs, " AND ")
	}
	var out []diffQuery
	for i := 0; i < n; i++ {
		p := pred()
		switch i % 6 {
		case 0:
			out = append(out, diffQuery{fmt.Sprintf(
				"SELECT s_cat, SUM(s_price), COUNT(*) FROM sales WHERE %s GROUP BY s_cat ORDER BY s_cat", p), true})
		case 1:
			out = append(out, diffQuery{fmt.Sprintf(
				"SELECT s_cat, AVG(s_qty) FROM sales WHERE %s GROUP BY s_cat ORDER BY s_cat", p), true})
		case 2:
			out = append(out, diffQuery{fmt.Sprintf(
				"SELECT SUM(s_price), SUM(s_qty) FROM sales WHERE %s", p), false})
		case 3:
			out = append(out, diffQuery{fmt.Sprintf(
				"SELECT s_id, s_price FROM sales WHERE %s ORDER BY s_id", p), true})
		case 4:
			out = append(out, diffQuery{fmt.Sprintf(
				"SELECT COUNT(*) FROM sales WHERE %s", p), false})
		default:
			out = append(out, diffQuery{fmt.Sprintf(
				"SELECT s_cat, MIN(s_price), MAX(s_price) FROM sales WHERE %s GROUP BY s_cat ORDER BY s_cat", p), true})
		}
	}
	return out
}

// canonicalRows renders result rows for comparison: floats rounded so the
// encrypted path's different evaluation order (SUM/COUNT split, shard
// merges) cannot flip a last-ulp bit, unordered results sorted.
func canonicalRows(t *testing.T, data [][]any, ordered bool) []string {
	t.Helper()
	out := make([]string, len(data))
	for i, row := range data {
		parts := make([]string, len(row))
		for j, v := range row {
			if f, ok := v.(float64); ok {
				parts[j] = fmt.Sprintf("%.6g", f)
				if math.IsNaN(f) {
					t.Fatalf("NaN in result row %d", i)
				}
			} else {
				parts[j] = fmt.Sprint(v)
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	if !ordered {
		sort.Strings(out)
	}
	return out
}

func TestDifferentialRandomQueries(t *testing.T) {
	sys := diffSystem(t)
	queries := genQueries(rand.New(rand.NewSource(diffSeed+1)), diffQueries)
	for _, par := range []int{1, 2, 4} {
		sys.SetParallelism(par)
		for _, bs := range diffBatchSizes {
			sys.SetBatchSize(bs)
			for _, sw := range diffStreamWire {
				sys.SetStreamWire(sw)
				for _, q := range queries {
					plain, err := sys.QueryPlaintext(q.sql)
					if err != nil {
						t.Fatalf("p=%d bs=%d sw=%v plaintext %s: %v", par, bs, sw, q.sql, err)
					}
					enc, err := sys.Query(q.sql)
					if err != nil {
						t.Fatalf("p=%d bs=%d sw=%v encrypted %s: %v", par, bs, sw, q.sql, err)
					}
					want := canonicalRows(t, plain.Data, q.ordered)
					got := canonicalRows(t, enc.Data, q.ordered)
					if len(got) != len(want) {
						t.Fatalf("p=%d bs=%d sw=%v %s: %d rows, plaintext %d", par, bs, sw, q.sql, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Errorf("p=%d bs=%d sw=%v %s\nrow %d: encrypted %q, plaintext %q", par, bs, sw, q.sql, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// genJoinQueries splices random sales filters into multi-table templates:
// equi-join projection, join + GROUP BY, join + ORDER BY .. LIMIT, cross
// join, and a NULL-sensitive join (the cats table carries NULL and
// duplicate join keys, so every equi-join exercises both). ORDER BY keys
// are chosen to impose a total order wherever row order is asserted.
func genJoinQueries(rng *rand.Rand, n int) []diffQuery {
	pred := func() string {
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("s_qty < %d", 5+rng.Intn(45))
		case 1:
			return fmt.Sprintf("s_price >= %d", rng.Intn(900))
		case 2:
			return fmt.Sprintf("s_date < date '19%02d-06-15'", 96+rng.Intn(3))
		default:
			return fmt.Sprintf("c_tier < %d", 2+rng.Intn(6))
		}
	}
	var out []diffQuery
	for i := 0; i < n; i++ {
		p := pred()
		switch i % 5 {
		case 0:
			out = append(out, diffQuery{fmt.Sprintf(
				"SELECT s_id, c_region, c_tier FROM sales, cats WHERE s_cat = c_name AND %s ORDER BY s_id, c_tier", p), true})
		case 1:
			out = append(out, diffQuery{fmt.Sprintf(
				"SELECT c_region, SUM(s_price), COUNT(*) FROM sales, cats WHERE s_cat = c_name AND %s GROUP BY c_region ORDER BY c_region", p), true})
		case 2:
			out = append(out, diffQuery{fmt.Sprintf(
				"SELECT s_id, s_price, c_tier FROM sales, cats WHERE s_cat = c_name AND %s ORDER BY s_price DESC, s_id, c_tier LIMIT %d", p, 7+rng.Intn(30)), true})
		case 3:
			// Cross join: no equi-join edge connects the tables.
			out = append(out, diffQuery{fmt.Sprintf(
				"SELECT COUNT(*), SUM(c_tier) FROM sales, cats WHERE %s", p), false})
		default:
			out = append(out, diffQuery{fmt.Sprintf(
				"SELECT s_cat, c_tier FROM sales, cats WHERE s_cat = c_name AND %s AND c_tier >= 0 ORDER BY s_cat, c_tier LIMIT 40", p), true})
		}
	}
	return out
}

// TestDifferentialJoinQueries runs the multi-table grid: every generated
// join query through the plaintext engine and the encrypted split path,
// across Parallelism × BatchSize × StreamWire — exercising the sharded
// partitioned hash-join build, the sharded probe and cross join, the
// streamed-probe pipeline, and the streamed wire shipping joined encrypted
// batches mid-probe.
func TestDifferentialJoinQueries(t *testing.T) {
	sys := diffSystem(t)
	queries := genJoinQueries(rand.New(rand.NewSource(diffSeed+3)), 15)
	for _, par := range []int{1, 2, 4} {
		sys.SetParallelism(par)
		for _, bs := range diffBatchSizes {
			sys.SetBatchSize(bs)
			for _, sw := range diffStreamWire {
				sys.SetStreamWire(sw)
				for _, q := range queries {
					plain, err := sys.QueryPlaintext(q.sql)
					if err != nil {
						t.Fatalf("p=%d bs=%d sw=%v plaintext %s: %v", par, bs, sw, q.sql, err)
					}
					enc, err := sys.Query(q.sql)
					if err != nil {
						t.Fatalf("p=%d bs=%d sw=%v encrypted %s: %v", par, bs, sw, q.sql, err)
					}
					want := canonicalRows(t, plain.Data, q.ordered)
					got := canonicalRows(t, enc.Data, q.ordered)
					if len(got) != len(want) {
						t.Fatalf("p=%d bs=%d sw=%v %s: %d rows, plaintext %d", par, bs, sw, q.sql, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Errorf("p=%d bs=%d sw=%v %s\nrow %d: encrypted %q, plaintext %q", par, bs, sw, q.sql, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestDifferentialParallelismInvariance pins the encrypted results
// themselves across execution modes: integer aggregates must be
// byte-identical whether computed sequentially, sharded, streamed, shipped
// over the streamed wire, or all at once — every ⟨parallelism, batch size,
// wire⟩ combination against the sequential materialized baseline.
func TestDifferentialParallelismInvariance(t *testing.T) {
	sys := diffSystem(t)
	queries := genQueries(rand.New(rand.NewSource(diffSeed+2)), 12)
	base := make([][]string, len(queries))
	sys.SetParallelism(1)
	sys.SetBatchSize(0)
	sys.SetStreamWire(false)
	for i, q := range queries {
		res, err := sys.Query(q.sql)
		if err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		base[i] = canonicalRows(t, res.Data, true)
	}
	for _, par := range []int{1, 2, 4} {
		sys.SetParallelism(par)
		for _, bs := range diffBatchSizes {
			for _, sw := range diffStreamWire {
				if par == 1 && bs == 0 && !sw {
					continue // the baseline itself
				}
				sys.SetBatchSize(bs)
				sys.SetStreamWire(sw)
				for i, q := range queries {
					res, err := sys.Query(q.sql)
					if err != nil {
						t.Fatalf("p=%d bs=%d sw=%v %s: %v", par, bs, sw, q.sql, err)
					}
					got := canonicalRows(t, res.Data, true)
					if strings.Join(got, "\n") != strings.Join(base[i], "\n") {
						t.Errorf("p=%d bs=%d sw=%v %s diverges from sequential materialized:\n%v\nvs\n%v", par, bs, sw, q.sql, got, base[i])
					}
				}
			}
		}
	}
}

// TestDifferentialShardedStream is the sharded-single-stream dimension of
// the grid: with the streamed wire the server-side producer is now
// sharded (per-worker row ranges feeding a shard-order merger), and the
// engine streams DISTINCT and grouped emission — so every shape the
// producer can take {plain scan, DISTINCT, GROUP BY (incl. Paillier
// aggregates), join probe, ORDER BY…LIMIT} must be byte-identical to the
// sequential one-puller baseline across p 1/2/4 × bs 0/64 × StreamWire.
// Row order is asserted verbatim (ordered=true for every shape): the
// stream contract pins order even where SQL would not.
func TestDifferentialShardedStream(t *testing.T) {
	sys := diffSystem(t)
	shapes := []string{
		// plain scan → filter → project (the sharded merger's home shape)
		"SELECT s_id, s_price FROM sales WHERE s_price >= 300",
		// streaming DISTINCT (seen-set emission; server-side and in the
		// client's local residual engine)
		"SELECT DISTINCT s_cat FROM sales WHERE s_qty < 40",
		"SELECT DISTINCT s_cat, s_qty FROM sales WHERE s_price >= 500",
		// grouped emission (Paillier sums finalize batch-at-a-time)
		"SELECT s_cat, SUM(s_price), COUNT(*) FROM sales GROUP BY s_cat",
		"SELECT s_cat, SUM(s_qty) FROM sales WHERE s_price >= 200 GROUP BY s_cat",
		// streamed join probe through the sharded producer
		"SELECT s_id, c_region, c_tier FROM sales, cats WHERE s_cat = c_name AND s_qty < 30",
		// streamed top-N production
		"SELECT s_id, s_price FROM sales WHERE s_qty < 45 ORDER BY s_price DESC, s_id LIMIT 23",
		// LIMIT across sharded producers (batch boundary and mid-batch)
		"SELECT s_id FROM sales WHERE s_price >= 100 LIMIT 64",
		"SELECT s_id FROM sales LIMIT 70",
		"SELECT s_id FROM sales LIMIT 0",
	}
	base := make([][]string, len(shapes))
	for _, bs := range diffBatchSizes {
		sys.SetBatchSize(bs)
		for _, sw := range diffStreamWire {
			sys.SetStreamWire(sw)
			sys.SetParallelism(1) // the sequential one-puller baseline
			for i, sql := range shapes {
				res, err := sys.Query(sql)
				if err != nil {
					t.Fatalf("baseline bs=%d sw=%v %s: %v", bs, sw, sql, err)
				}
				base[i] = canonicalRows(t, res.Data, true)
			}
			for _, par := range []int{2, 4} {
				sys.SetParallelism(par)
				for i, sql := range shapes {
					res, err := sys.Query(sql)
					if err != nil {
						t.Fatalf("p=%d bs=%d sw=%v %s: %v", par, bs, sw, sql, err)
					}
					got := canonicalRows(t, res.Data, true)
					if strings.Join(got, "\n") != strings.Join(base[i], "\n") {
						t.Errorf("p=%d bs=%d sw=%v %s diverges from sequential puller:\n%v\nvs\n%v",
							par, bs, sw, sql, got, base[i])
					}
				}
			}
		}
	}
}

// TestDifferentialIndexInvariance is the access-path dimension of the grid:
// the same queries with secondary indexes off (every scan reads the whole
// table) and on (DET hash probes, OPE range probes, ordered emission,
// index-served join builds — whenever the cost rule picks them) must be
// byte-identical, across parallelism × batch size × wire. The index-off
// sequential materialized run is the baseline.
func TestDifferentialIndexInvariance(t *testing.T) {
	sys := diffSystem(t)
	queries := genQueries(rand.New(rand.NewSource(diffSeed+4)), 12)
	queries = append(queries, genJoinQueries(rand.New(rand.NewSource(diffSeed+5)), 5)...)
	sys.SetIndexes(false)
	sys.SetParallelism(1)
	sys.SetBatchSize(0)
	sys.SetStreamWire(false)
	base := make([][]string, len(queries))
	plainBase := make([][]string, len(queries))
	for i, q := range queries {
		res, err := sys.Query(q.sql)
		if err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		base[i] = canonicalRows(t, res.Data, true)
		p, err := sys.QueryPlaintext(q.sql)
		if err != nil {
			t.Fatalf("plaintext %s: %v", q.sql, err)
		}
		plainBase[i] = canonicalRows(t, p.Data, true)
	}
	for _, idx := range []bool{false, true} {
		sys.SetIndexes(idx)
		for _, par := range []int{1, 4} {
			sys.SetParallelism(par)
			for _, bs := range diffBatchSizes {
				sys.SetBatchSize(bs)
				for _, sw := range diffStreamWire {
					if !idx && par == 1 && bs == 0 && !sw {
						continue // the baseline itself
					}
					sys.SetStreamWire(sw)
					for i, q := range queries {
						res, err := sys.Query(q.sql)
						if err != nil {
							t.Fatalf("idx=%v p=%d bs=%d sw=%v %s: %v", idx, par, bs, sw, q.sql, err)
						}
						got := canonicalRows(t, res.Data, true)
						if strings.Join(got, "\n") != strings.Join(base[i], "\n") {
							t.Errorf("idx=%v p=%d bs=%d sw=%v %s diverges from index-off baseline:\n%v\nvs\n%v",
								idx, par, bs, sw, q.sql, got, base[i])
						}
						p, err := sys.QueryPlaintext(q.sql)
						if err != nil {
							t.Fatalf("idx=%v plaintext %s: %v", idx, q.sql, err)
						}
						pg := canonicalRows(t, p.Data, true)
						if strings.Join(pg, "\n") != strings.Join(plainBase[i], "\n") {
							t.Errorf("idx=%v p=%d bs=%d sw=%v plaintext %s diverges:\n%v\nvs\n%v",
								idx, par, bs, sw, q.sql, pg, plainBase[i])
						}
					}
				}
			}
		}
	}
	if lookups, _ := func() (int64, int64) { s := sys.Stats(); return s.IndexLookups, s.RowsSkippedByIndex }(); lookups == 0 {
		t.Fatalf("grid never exercised an index probe (IndexLookups = 0)")
	}
}
