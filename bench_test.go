// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§8). Each benchmark regenerates its experiment's
// measurements; `go test -bench=. -benchmem` prints them alongside the
// harness's own timing. System setup (data generation, designer,
// encryption) happens once outside the timer.
//
// Scale: benchmarks run TPC-H at SF 0.002 (multi-system sweep benchmarks at
// SF 0.0005) with 512-bit Paillier keys so the full suite completes in
// minutes within modest memory. The shapes (who wins, by what factor)
// are scale-stable; see EXPERIMENTS.md for the recorded paper-vs-measured
// comparison.
package monomi

import (
	"fmt"
	"runtime/debug"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/tpch"
)

// reclaim returns heap from earlier benchmarks to the OS before a
// multi-system sweep; the suite otherwise exceeds modest memory limits.
func reclaim() { debug.FreeOSMemory() }

const (
	benchSF   = tpch.ScaleFactor(0.002)
	benchSeed = 1
	benchBits = 512
)

var benchSuite = struct {
	once  sync.Once
	suite *experiments.Suite
	err   error
}{}

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchSuite.once.Do(func() {
		benchSuite.suite, benchSuite.err = experiments.NewSuite(benchSF, benchSeed, benchBits)
	})
	if benchSuite.err != nil {
		b.Fatal(benchSuite.err)
	}
	return benchSuite.suite
}

// runAll executes every supported query on a bench and fails on error.
func runAll(b *testing.B, run func(int) error) {
	b.Helper()
	for _, qn := range tpch.SupportedQueries() {
		if err := run(qn); err != nil {
			b.Fatalf("Q%d: %v", qn, err)
		}
	}
}

// BenchmarkFigure4_Plaintext is Figure 4's baseline: the 19 supported
// TPC-H queries on the unencrypted database.
func BenchmarkFigure4_Plaintext(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runAll(b, func(qn int) error { _, err := s.Monomi.RunPlain(qn); return err })
	}
}

// BenchmarkFigure4_MONOMI runs the full workload through MONOMI's split
// execution (designer + runtime planner + all §5 optimizations).
func BenchmarkFigure4_MONOMI(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runAll(b, func(qn int) error { _, err := s.Monomi.RunEncrypted(qn); return err })
	}
}

// BenchmarkFigure4_ExecutionGreedy runs the workload with every technique
// applied greedily and no cost-based planner (§8.3's comparison point).
func BenchmarkFigure4_ExecutionGreedy(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runAll(b, func(qn int) error { _, err := s.Greedy.RunEncrypted(qn); return err })
	}
}

// BenchmarkFigure4_CryptDBClient runs the workload on the paper's
// modified-CryptDB baseline (no precomputation, per-row Paillier).
func BenchmarkFigure4_CryptDBClient(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runAll(b, func(qn int) error { _, err := s.CryptDB.RunEncrypted(qn); return err })
	}
}

// BenchmarkParallelism_TPCHGroupedAgg runs TPC-H Q1 (the grouped-
// aggregation workhorse: full lineitem scan, four groups, eight
// aggregates) through MONOMI's encrypted split execution at increasing
// sharded-execution worker counts. On a multi-core host the p>1 variants
// demonstrate the multi-core speedup of the sharded server engine and
// batched Paillier aggregation; on a single core they bound the overhead.
func BenchmarkParallelism_TPCHGroupedAgg(b *testing.B) {
	s := suite(b)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			s.Monomi.SetParallelism(p)
			// Warm the client's decryption caches so the first level
			// measured does not pay the cold decrypts alone.
			if _, err := s.Monomi.RunEncrypted(1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Monomi.RunEncrypted(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	s.Monomi.SetParallelism(0)
}

// BenchmarkStreaming_TPCHGroupedAgg runs encrypted TPC-H Q1 with the
// streaming batch-at-a-time pipeline off and on: with streaming the
// server's RemoteSQL scan pulls lineitem in row batches that feed the
// encrypted filter and per-group aggregation states directly, and the
// client's residual grouped aggregation streams its temp-table scan the
// same way.
func BenchmarkStreaming_TPCHGroupedAgg(b *testing.B) {
	s := suite(b)
	for _, mode := range []struct {
		name  string
		batch int
	}{{"materialized", 0}, {"streamed", 1024}} {
		b.Run(mode.name, func(b *testing.B) {
			s.Monomi.SetBatchSize(mode.batch)
			// Warm the client's decryption caches (see the parallelism
			// benchmark above).
			if _, err := s.Monomi.RunEncrypted(1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Monomi.RunEncrypted(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	s.Monomi.SetBatchSize(0)
}

// BenchmarkStreaming_TPCHGroupedAggPlain is the plaintext counterpart,
// isolating the engine's streamed scan/aggregate pipeline from the
// crypto.
func BenchmarkStreaming_TPCHGroupedAggPlain(b *testing.B) {
	s := suite(b)
	for _, mode := range []struct {
		name  string
		batch int
	}{{"materialized", 0}, {"streamed", 1024}} {
		b.Run(mode.name, func(b *testing.B) {
			s.Monomi.SetBatchSize(mode.batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Monomi.RunPlain(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	s.Monomi.SetBatchSize(0)
}

// BenchmarkParallelism_TPCHGroupedAggPlain is the plaintext counterpart,
// isolating the engine's sharded scan/aggregate loops from the crypto.
func BenchmarkParallelism_TPCHGroupedAggPlain(b *testing.B) {
	s := suite(b)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			s.Monomi.SetParallelism(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Monomi.RunPlain(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	s.Monomi.SetParallelism(0)
}

// BenchmarkFigure5_CumulativeTechniques measures the full §8.3 sweep: six
// configurations from CryptDB+Client to +Planner, each running all 19
// queries (Figure 6's per-technique highlights derive from the same data).
func BenchmarkFigure5_CumulativeTechniques(b *testing.B) {
	reclaim()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(0.0005, benchSeed, benchBits, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7_ClientCPU measures the client-CPU-ratio experiment.
func BenchmarkFigure7_ClientCPU(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_ServerSpace measures the space census across the three
// configurations (sizes come from the already-encrypted databases; the
// benchmark covers the accounting path).
func BenchmarkTable2_ServerSpace(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Table2()
		if len(rows) != 4 {
			b.Fatal("table 2 must have 4 rows")
		}
	}
}

// BenchmarkTable3_SecurityCensus measures the weakest-scheme census over
// the MONOMI design.
func BenchmarkTable3_SecurityCensus(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(s.Monomi.Design.Design)
		if len(rows) != 8 {
			b.Fatal("census must cover 8 tables")
		}
	}
}

// BenchmarkDesignerILP measures one full designer run (unit extraction,
// candidate planning, ILP solve) on the complete workload.
func BenchmarkDesignerILP(b *testing.B) {
	s := suite(b)
	_ = s
	reclaim()
	for i := 0; i < b.N; i++ {
		cfg := experiments.MonomiConfig(benchSF)
		cfg.Seed = benchSeed
		cfg.PaillierBits = benchBits
		if _, err := experiments.Setup(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// releaseSuite frees the cached three-system suite so the final
// multi-system sweeps fit in modest memory alongside their own builds.
func releaseSuite() {
	benchSuite.suite = nil
	reclaim()
}

// BenchmarkFigureZ8_DesignerSubsets measures Figure 8's designer-estimate
// sweep (greedy forward selection, k=0..2 plus k=all). The measured-runtime
// half runs via `monomi-bench -exp fig8` — building k+2 encrypted systems
// per iteration does not fit the benchmark process's memory budget. Named
// with a Z so it runs after the suite-based benchmarks and may release them.
func BenchmarkFigureZ8_DesignerSubsets(b *testing.B) {
	releaseSuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EstimateSweep(benchSF, benchSeed, benchBits, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigureZ9_SpaceBudgets measures the S=2 vs S=1.4 ILP/Space-Greedy
// comparison end to end (three designs, three encrypted databases, all
// queries). Runs last (Z) so the shared suite can be released first.
func BenchmarkFigureZ9_SpaceBudgets(b *testing.B) {
	releaseSuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(0.0005, benchSeed, benchBits, 0); err != nil {
			b.Fatal(err)
		}
	}
}
