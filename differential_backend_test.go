package monomi

import (
	"math/rand"
	"strings"
	"testing"
)

// Backend dimension of the differential grid: the same encrypted system
// built on the in-memory backend and on the disk backend (paged segment
// files behind a block cache far smaller than the tables) must produce
// byte-identical results to each other and to plaintext, across
// parallelism × batch size × wire × deployment. The backends share row-id
// assignment and feed the same sharded producer, so nothing above the
// storage seam may observe which one holds the rows — only the charged I/O
// (real page reads vs the resident-byte approximation) differs.

// TestDifferentialBackendInvariance runs the in-process grid over both
// backends.
func TestDifferentialBackendInvariance(t *testing.T) {
	mem := diffSystemBackend(t, "mem")
	disk := diffSystemBackend(t, "disk")
	t.Cleanup(func() { mem.Close(); disk.Close() })

	queries := genQueries(rand.New(rand.NewSource(diffSeed+6)), 12)
	queries = append(queries, genJoinQueries(rand.New(rand.NewSource(diffSeed+7)), 6)...)

	for _, par := range []int{1, 4} {
		mem.SetParallelism(par)
		disk.SetParallelism(par)
		for _, bs := range diffBatchSizes {
			mem.SetBatchSize(bs)
			disk.SetBatchSize(bs)
			for _, sw := range diffStreamWire {
				mem.SetStreamWire(sw)
				disk.SetStreamWire(sw)
				for _, q := range queries {
					plain, err := mem.QueryPlaintext(q.sql)
					if err != nil {
						t.Fatalf("p=%d bs=%d sw=%v plaintext %s: %v", par, bs, sw, q.sql, err)
					}
					m, err := mem.Query(q.sql)
					if err != nil {
						t.Fatalf("p=%d bs=%d sw=%v mem %s: %v", par, bs, sw, q.sql, err)
					}
					d, err := disk.Query(q.sql)
					if err != nil {
						t.Fatalf("p=%d bs=%d sw=%v disk %s: %v", par, bs, sw, q.sql, err)
					}
					want := canonicalRows(t, plain.Data, q.ordered)
					gm := canonicalRows(t, m.Data, q.ordered)
					gd := canonicalRows(t, d.Data, q.ordered)
					if strings.Join(gd, "\n") != strings.Join(gm, "\n") {
						t.Errorf("p=%d bs=%d sw=%v %s: disk diverges from mem:\n%v\nvs\n%v", par, bs, sw, q.sql, gd, gm)
					}
					if strings.Join(gd, "\n") != strings.Join(want, "\n") {
						t.Errorf("p=%d bs=%d sw=%v %s: disk diverges from plaintext:\n%v\nvs\n%v", par, bs, sw, q.sql, gd, want)
					}
				}
			}
		}
	}

	// The disk grid must have actually paged: the block cache is smaller
	// than the encrypted tables, so full scans forced real reads.
	dst := disk.Stats()
	if dst.PageReads == 0 || dst.CacheMisses == 0 || dst.PageBytesRead == 0 {
		t.Fatalf("disk grid charged no physical reads: %+v", dst)
	}
	if hr := dst.CacheHitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("disk cache hit rate %v outside (0,1)", hr)
	}
	mst := mem.Stats()
	if mst.PageReads != 0 || mst.CacheMisses != 0 {
		t.Errorf("mem backend reported physical reads: %+v", mst)
	}
}

// TestDifferentialBackendServed is the deployment axis: the disk-backed
// system served over real TCP (transport sessions, wire codec, admission
// control) must match the mem-backed system's in-process results.
func TestDifferentialBackendServed(t *testing.T) {
	mem := diffSystemBackend(t, "mem")
	disk := diffSystemBackend(t, "disk")
	t.Cleanup(func() { mem.Close(); disk.Close() })
	disk.SetParallelism(2)
	disk.SetBatchSize(64)
	disk.SetStreamWire(true)

	srv, err := disk.Serve("127.0.0.1:0", ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote, err := disk.ConnectRemote(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	queries := genQueries(rand.New(rand.NewSource(diffSeed+8)), 10)
	for _, q := range queries {
		m, err := mem.Query(q.sql)
		if err != nil {
			t.Fatalf("mem %s: %v", q.sql, err)
		}
		r, err := remote.Query(q.sql)
		if err != nil {
			t.Fatalf("served disk %s: %v", q.sql, err)
		}
		gm := canonicalRows(t, m.Data, q.ordered)
		gr := canonicalRows(t, r.Data, q.ordered)
		if strings.Join(gr, "\n") != strings.Join(gm, "\n") {
			t.Errorf("%s: served disk diverges from in-process mem:\n%v\nvs\n%v", q.sql, gr, gm)
		}
	}
	if st := disk.Stats(); st.PageReads == 0 {
		t.Fatalf("served disk system charged no page reads: %+v", st)
	}
}
