// Package monomi is the public API of this MONOMI reproduction: a system
// for securely executing analytical SQL over an encrypted database hosted
// on an untrusted server ("Processing Analytical Queries over Encrypted
// Data", Tu, Kaashoek, Madden, Zeldovich — VLDB 2013).
//
// The flow mirrors Figure 1 of the paper:
//
//  1. Build (or load) a plaintext database and a representative workload.
//  2. Run the Designer to choose the encrypted physical design — which
//     ⟨value, scheme⟩ columns to materialize (DET, OPE, HOM/Paillier,
//     SEARCH, RND), which expressions to precompute per row, and how to
//     pack Paillier plaintexts — optionally under a space budget S.
//  3. Encrypt the database and host it on the untrusted server.
//  4. Query the returned System (its client side is the trusted library and
//     sole key holder): every query is split by the planner into RemoteSQL
//     over ciphertexts plus local decrypt/filter/group/sort operators.
//
// A quickstart:
//
//	db := monomi.NewDatabase()
//	db.MustCreateTable("orders",
//	    monomi.Col("o_id", monomi.Int), monomi.Col("o_cust", monomi.String),
//	    monomi.Col("o_total", monomi.Int), monomi.Col("o_date", monomi.Date))
//	db.MustInsert("orders", 1, "alice", 120, "1995-01-15")
//	...
//	sys, err := monomi.Encrypt(db, monomi.Workload{
//	    "top": "SELECT o_cust, SUM(o_total) FROM orders GROUP BY o_cust",
//	}, monomi.DefaultOptions())
//	rows, err := sys.Query("SELECT o_cust, SUM(o_total) t FROM orders GROUP BY o_cust ORDER BY t DESC")
//
// # Parallel sharded execution
//
// Both sides of the split execute in parallel: scans, filters, hash-join
// probes, projection, and grouped aggregation are partitioned into
// contiguous row-range shards run by a worker pool, and the server batches
// each shard's Paillier ciphertext multiplications into modular products.
// Per-shard aggregation states recombine through a partial-state Merge
// (engine.AggState.Merge): shards merge in row order, so results — group
// order, row order, ciphertext concatenations, even the wire encoding of
// homomorphic sums — are identical to sequential execution, except that
// SUM/AVG over Float columns may differ from the sequential fold in the
// last ULP (per-shard partial sums regroup the float additions). The
// worker count is Options.Parallelism (default GOMAXPROCS; 1 forces the
// sequential path) and can be changed later with System.SetParallelism.
//
// # Streaming batch-at-a-time execution
//
// Options.BatchSize > 0 additionally streams eligible scans: a
// single-table query — the shape of most RemoteSQL the planner ships to
// the untrusted server, and of the local residual queries — executes as a
// pull pipeline of fixed-size row batches, scan → filter →
// projection/aggregation, without materializing the filtered intermediate
// relation. Grouped aggregation (including the crypto UDFs) folds each
// batch straight into its per-group states, LIMIT stops the scan as soon
// as enough rows are produced, and streaming composes with sharding: every
// worker streams its own row range and the per-shard partials merge
// exactly as in materialized sharded execution. Multi-table queries stream
// the probe side of their joins: build sides materialize into partitioned
// hash tables (sharded by key hash, no global lock) and the first table's
// scan flows through the probe chain batch-at-a-time, so the join output
// is never materialized whole. DISTINCT streams through a
// first-occurrence seen-set (per-shard pre-dedup when sharded). Full
// ORDER BY sorts and subqueries fall back to the materialized operators
// (ORDER BY still streams the scan→filter front; ORDER BY with LIMIT runs
// a streamed bounded-heap top-N). Results are byte-identical to materialized
// execution at every ⟨BatchSize, Parallelism⟩ combination, with the same
// float SUM/AVG last-ULP caveat above — it comes from sharding, not from
// batching. 0 (the default) keeps the materialized executor; the knob can
// be changed later with System.SetBatchSize.
//
// # Streamed wire protocol
//
// Options.StreamWire extends the pipeline across the trust boundary: the
// untrusted server frames encrypted result batches onto the wire while its
// scan is still running (internal/wire's header/batch/end framing), and
// the trusted client decodes each arriving batch on a pool of Parallelism
// decrypt workers, merging decrypted rows in batch order. The decryption
// cache and the Paillier pack cache are sharded-mutex concurrent, so the
// workers share them without serializing. Multi-table RemoteSQL pipelines
// the same way: the server hash-joins the encrypted tables (shared-key
// DET join groups) and ships joined batches mid-probe, so join-heavy
// queries see their first plaintext row after build + one batch. The
// server-side stream is itself produced by Parallelism workers (disjoint
// row ranges feeding a shard-order merger, byte-identical to a sequential
// stream), grouped queries ship finalized groups batch-at-a-time once
// accumulation ends, and DISTINCT ships first occurrences as the scan
// discovers them. Results are byte-identical to
// the materialized wire; what changes is latency shape — the first
// plaintext row is available after one batch instead of after the whole
// scan (Rows.TimeToFirstRow) — and peak client memory, since encrypted
// batches are dropped as soon as they are decrypted instead of the whole
// intermediate result being held alongside the decoded table. Toggle later
// with System.SetStreamWire.
//
// # Remote deployment
//
// The split can run over a real network instead of in-process:
// System.Serve exposes the untrusted server half on a TCP (optionally TLS)
// address — many concurrent client sessions, per-query cancellation, and
// admission control (connection cap, in-flight query cap) — and
// System.ConnectRemote dials it, returning a System whose queries plan and
// decrypt locally but execute their RemoteSQL over the socket. The wire
// carries exactly the in-process stream bytes (the internal/wire batch
// framing, chunked into transport frames), so results, row order, and
// encodings are identical to the in-process path in every mode. The
// cmd/monomi-server binary is a standalone deployment of Serve:
//
//	monomi-server -addr :7077 -sf 0.002            # untrusted host
//	sys, _ := monomi.Encrypt(db, workload, opts)   # trusted host (same
//	remote, _ := sys.ConnectRemote("server:7077")  # key/schema/workload)
//	rows, _ := remote.Query("SELECT ...")
//	defer remote.Close()
//
// Both sides must be built from the same master key, schema, and workload:
// the encrypted design is deterministic, so the trusted side re-derives
// the keys and metadata the remote data was encrypted under.
package monomi

import (
	"crypto/tls"
	"fmt"

	"repro/internal/ast"
	"repro/internal/client"
	"repro/internal/designer"
	"repro/internal/enc"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/planner"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/transport"
	"repro/internal/value"
)

// ColType enumerates column types.
type ColType int

// Column types.
const (
	Int ColType = iota
	Float
	String
	Date
)

// Column declares one table column.
type Column struct {
	Name string
	Type ColType
}

// Col is a convenience constructor.
func Col(name string, t ColType) Column { return Column{Name: name, Type: t} }

// Database is a plaintext database under construction (the trusted side's
// source of truth before encryption).
type Database struct {
	cat *storage.Catalog
}

// NewDatabase creates an empty database.
func NewDatabase() *Database { return &Database{cat: storage.NewCatalog()} }

// CreateTable adds a table.
func (d *Database) CreateTable(name string, cols ...Column) error {
	s := storage.Schema{Name: name}
	for _, c := range cols {
		s.Cols = append(s.Cols, storage.Column{Name: c.Name, Type: colType(c.Type)})
	}
	_, err := d.cat.Create(s)
	return err
}

// MustCreateTable is CreateTable that panics on error.
func (d *Database) MustCreateTable(name string, cols ...Column) {
	if err := d.CreateTable(name, cols...); err != nil {
		panic(err)
	}
}

// Insert appends a row; date columns take "YYYY-MM-DD" strings, and a nil
// value inserts SQL NULL (encrypted as NULL — nullness is not hidden).
func (d *Database) Insert(table string, vals ...any) error {
	t, err := d.cat.Table(table)
	if err != nil {
		return err
	}
	if len(vals) != len(t.Schema.Cols) {
		return fmt.Errorf("monomi: table %s expects %d values, got %d", table, len(t.Schema.Cols), len(vals))
	}
	row := make([]value.Value, len(vals))
	for i, v := range vals {
		cv, err := toValue(t.Schema.Cols[i].Type, v)
		if err != nil {
			return fmt.Errorf("monomi: column %s: %w", t.Schema.Cols[i].Name, err)
		}
		row[i] = cv
	}
	return t.Insert(row)
}

// MustInsert is Insert that panics on error.
func (d *Database) MustInsert(table string, vals ...any) {
	if err := d.Insert(table, vals...); err != nil {
		panic(err)
	}
}

// TPCH returns a generated TPC-H database at the given scale factor
// (SF 1.0 = 6M lineitem rows; experiments here use small fractions).
func TPCH(scaleFactor float64, seed int64) (*Database, error) {
	cat, err := tpch.Generate(tpch.ScaleFactor(scaleFactor), seed)
	if err != nil {
		return nil, err
	}
	return &Database{cat: cat}, nil
}

// TPCHQuery returns the adapted text of a supported TPC-H query.
func TPCHQuery(n int) (string, bool) {
	q, ok := tpch.Queries[n]
	return q, ok
}

// TPCHQueries lists the supported TPC-H query numbers.
func TPCHQueries() []int { return tpch.SupportedQueries() }

// Workload maps labels to representative SQL queries for the designer.
type Workload map[string]string

// Options configures encryption and the designer.
type Options struct {
	// MasterKey derives all column keys; required non-empty.
	MasterKey []byte
	// PaillierBits is the HOM modulus width (paper: 1024).
	PaillierBits int
	// SpaceBudget is the paper's S factor (0 = unconstrained).
	SpaceBudget float64
	// SpaceGreedy uses the §8.6 heuristic instead of the ILP.
	SpaceGreedy bool
	// NetBitsPerSec / DiskBytesPerSec configure the simulated link & disk.
	NetBitsPerSec   float64
	DiskBytesPerSec float64
	// ProfileCosts measures real per-op decryption costs at startup
	// (§6.4's profiler) instead of using calibrated defaults.
	ProfileCosts bool
	// Parallelism is the worker count for sharded query execution on both
	// sides of the split: the untrusted server partitions its scans,
	// filters, joins, and grouped aggregation into contiguous row-range
	// shards (per-shard aggregation states recombine with AggState.Merge,
	// and each shard batches its Paillier ciphertext multiplications), and
	// the trusted client runs its residual local operators the same way.
	// 0 (the default) uses GOMAXPROCS; 1 forces fully sequential
	// execution. Results are identical at every level, except SUM/AVG
	// over Float columns, which may differ in the last ULP (see the
	// package doc).
	Parallelism int
	// BatchSize is the streamed-execution batch size on both sides of the
	// split: when > 0, eligible single-table queries run as a
	// batch-at-a-time pipeline (scan → filter → projection/aggregation)
	// instead of materializing every operator's output, on the untrusted
	// server's encrypted scans and the trusted client's local residual
	// queries alike. 0 (the default) keeps the fully materialized
	// executor; 1 streams row-at-a-time (correct but slow — useful only
	// for testing); 1024 is a good general-purpose size. Results are
	// byte-identical to materialized execution at every
	// ⟨BatchSize, Parallelism⟩ combination — streaming never changes rows,
	// row order, or encodings; the float SUM/AVG last-ULP caveat on
	// Parallelism is the only exception and is independent of BatchSize.
	BatchSize int
	// PaillierPool precomputes Paillier encryption randomness (the
	// plaintext-independent r^N mod N² blinding factors) on background
	// goroutines, so hot-path HOM encryptions — database encryption and
	// per-execution parameter rebinding — cost one multiply instead of a
	// modular exponentiation. Ciphertexts are byte-compatible with unpooled
	// encryption. Off by default; when enabled, call System.Close to join
	// the pool workers.
	PaillierPool bool
	// StreamWire streams results across the trust boundary: the untrusted
	// server frames encrypted batches onto the wire mid-scan and the
	// trusted client decrypts each arriving batch on Parallelism workers,
	// merging in batch order — so the first plaintext row exists after one
	// batch instead of after the whole scan (Rows.TimeToFirstRow). Results
	// are byte-identical to the materialized wire. Combine with BatchSize
	// > 0: with 0, the wire still streams but the server can only frame
	// batches once its materialized execution finishes. Off by default;
	// toggle later with System.SetStreamWire.
	StreamWire bool
	// Indexes maintains secondary indexes over the encrypted tables — a
	// DET hash index (equality, IN, hash-join builds) and an OPE ordered
	// index (ranges, BETWEEN, prefix ORDER BY) per column carrying those
	// schemes — and lets both the engine and the cost-based planner choose
	// an index probe over a full scan when the predicate is selective
	// enough. The plaintext baseline engine gets mirror indexes on the
	// same columns so comparisons stay fair. Results are byte-identical
	// with indexes on or off; only scan cost changes. DefaultOptions
	// enables it; toggle later with System.SetIndexes.
	Indexes bool
	// Backend selects the encrypted catalog's physical row store: "" or
	// "mem" keeps rows in memory (the original layout); "disk" loads each
	// encrypted table into an append-only paged segment file under DataDir,
	// read back through an LRU block cache. Results are byte-identical
	// across backends at every ⟨Parallelism, BatchSize, wire, deployment⟩
	// combination; what changes is the charged I/O — a disk-backed scan
	// charges its real page reads (block-cache misses) instead of the
	// resident-byte approximation.
	Backend string
	// DataDir is where the disk backend places its segment files
	// (required when Backend is "disk").
	DataDir string
	// PageBytes is the disk backend's segment page size
	// (0 = storage.DefaultPageBytes).
	PageBytes int
	// BlockCacheBytes is the disk backend's block-cache capacity
	// (0 = storage.DefaultCacheBytes).
	BlockCacheBytes int64
}

// backendConfig resolves the Options backend fields into a storage config.
func (o Options) backendConfig() (storage.BackendConfig, error) {
	kind, err := storage.ParseBackendKind(o.Backend)
	if err != nil {
		return storage.BackendConfig{}, err
	}
	cfg := storage.BackendConfig{
		Kind: kind, Dir: o.DataDir,
		PageBytes: o.PageBytes, CacheBytes: o.BlockCacheBytes,
	}
	if kind == storage.BackendDisk && cfg.Dir == "" {
		return storage.BackendConfig{}, fmt.Errorf("monomi: Backend \"disk\" requires DataDir")
	}
	return cfg, nil
}

// DefaultOptions returns the paper's configuration: 1,024-bit Paillier,
// S=2 space budget, 10 Mbit/s link.
func DefaultOptions() Options {
	return Options{
		MasterKey:    []byte("monomi-default-master-key"),
		PaillierBits: 1024,
		SpaceBudget:  2.0,
		Indexes:      true,
	}
}

// System is an encrypted deployment: untrusted server + trusted client.
type System struct {
	db     *Database
	keys   *enc.KeyStore
	design *designer.Result
	encDB  *enc.DB
	client *client.Client
	plain  *engine.Engine
	net    netsim.Config
	// conn is the dialed transport session when this System came from
	// ConnectRemote (nil for in-process deployments).
	conn *transport.Conn
	// ownsKeys marks the System that created the key store (Encrypt);
	// remote Systems share it and must not tear it down on Close.
	ownsKeys bool
}

// Encrypt runs the designer over the workload, encrypts the database, and
// returns a ready System.
func Encrypt(db *Database, workload Workload, opts Options) (*System, error) {
	if len(opts.MasterKey) == 0 {
		return nil, fmt.Errorf("monomi: MasterKey must be set")
	}
	if opts.PaillierBits == 0 {
		opts.PaillierBits = 1024
	}
	net := netsim.Default()
	if opts.NetBitsPerSec > 0 {
		net.NetBitsPerSec = opts.NetBitsPerSec
	}
	if opts.DiskBytesPerSec > 0 {
		net.DiskBytesPerSec = opts.DiskBytesPerSec
	}
	ks, err := enc.NewKeyStore(opts.MasterKey, opts.PaillierBits)
	if err != nil {
		return nil, err
	}
	if opts.PaillierPool {
		ks.EnablePaillierPool(128, 2)
	}
	cost := planner.DefaultCostModel(net)
	if opts.ProfileCosts {
		cost = planner.ProfileCostModel(ks, net)
	}
	cost.HomCipherBytes = ks.Paillier().CiphertextSize()

	w, err := designer.ParseWorkload(workload)
	if err != nil {
		return nil, err
	}
	dopts := designer.MonomiOptions()
	dopts.SpaceBudget = opts.SpaceBudget
	dopts.SpaceGreedy = opts.SpaceGreedy
	dres, err := designer.Run(db.cat, w, ks, cost, dopts)
	if err != nil {
		return nil, err
	}
	becfg, err := opts.backendConfig()
	if err != nil {
		return nil, err
	}
	encDB, err := enc.EncryptDatabaseOn(db.cat, dres.Design, ks, opts.Parallelism, becfg)
	if err != nil {
		return nil, err
	}
	if opts.Indexes {
		if err := buildPlainIndexes(db.cat, dres.Design); err != nil {
			return nil, err
		}
	}
	srv := server.New(encDB, net)
	dres.Context.EnablePrefilter = true
	cl := client.New(ks, srv, dres.Context, net)
	sys := &System{
		db: db, keys: ks, design: dres, encDB: encDB, client: cl,
		plain: engine.New(db.cat), net: net, ownsKeys: true,
	}
	sys.SetParallelism(opts.Parallelism)
	sys.SetBatchSize(opts.BatchSize)
	sys.SetStreamWire(opts.StreamWire)
	sys.SetIndexes(opts.Indexes)
	return sys, nil
}

// buildPlainIndexes mirrors the encrypted tables' secondary indexes onto
// the plaintext baseline: every base column the design encrypts with DET
// gets a hash index, every OPE column an ordered index — so plaintext-vs-
// encrypted comparisons measure encryption overhead, not index presence.
func buildPlainIndexes(cat *storage.Catalog, design *enc.Design) error {
	for _, it := range design.Items {
		cr, ok := it.Expr.(*ast.ColumnRef)
		if !ok {
			continue // precomputed expressions have no plaintext column
		}
		t, err := cat.Table(it.Table)
		if err != nil {
			continue
		}
		switch it.Scheme {
		case enc.DET:
			_, err = t.EnsureIndex(cr.Column, storage.HashIndex)
		case enc.OPE:
			_, err = t.EnsureIndex(cr.Column, storage.OrderedIndex)
		default:
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// SetParallelism changes the worker count for sharded execution on the
// server, the client's local operators, and the plaintext baseline engine
// (see Options.Parallelism). It must not be called while queries are in
// flight. On a remote System (ConnectRemote) only the client-side knob
// moves — the remote server's parallelism is fixed by its own flags.
func (s *System) SetParallelism(p int) {
	if s.client.Srv != nil {
		s.client.Srv.SetParallelism(p)
	}
	s.client.Parallelism = p
	s.plain.Parallelism = p
}

// SetBatchSize changes the streamed-execution batch size on the server,
// the client's local operators, and the plaintext baseline engine (see
// Options.BatchSize; 0 = materialized). It must not be called while
// queries are in flight. On a remote System only the client-side knob
// moves — the remote server's batch size is fixed by its own flags.
func (s *System) SetBatchSize(b int) {
	if s.client.Srv != nil {
		s.client.Srv.SetBatchSize(b)
	}
	s.client.BatchSize = b
	s.plain.BatchSize = b
}

// SetStreamWire toggles the streamed wire protocol for remote execution
// (see Options.StreamWire). It must not be called while queries are in
// flight.
func (s *System) SetStreamWire(on bool) {
	s.client.StreamWire = on
}

// SetIndexes toggles secondary-index access paths on the server's engine,
// the planner's cost model, and the plaintext baseline engine (see
// Options.Indexes). Results are byte-identical either way. Cached plans
// are dropped so subsequent executions are costed under the new setting.
// It must not be called while queries are in flight. On a remote System
// only the client-side planner moves — the remote server's engine setting
// is fixed by its own flags.
func (s *System) SetIndexes(on bool) {
	if s.client.Srv != nil {
		s.client.Srv.SetIndexes(on)
	}
	if s.client.Ctx != nil {
		s.client.Ctx.Indexes = on
	}
	s.client.ResetPlanCache()
	s.plain.UseIndexes = on
}

// ServeConfig tunes a network deployment of the untrusted server: MaxConns
// caps concurrent sessions (the C+1th connection is rejected with a typed
// frame), MaxInFlight caps globally concurrent query executions, QueryWait
// bounds how long a query waits for an in-flight slot (0 = fail fast),
// and TLS wraps accepted connections when set.
type ServeConfig = transport.Config

// Server is a running network endpoint for a System's untrusted half; see
// its Close, Addr, Stats, and SessionStats methods.
type Server = transport.Server

// Serve exposes this System's untrusted server on a TCP address (use
// ":0" for an ephemeral port; Addr reports it). The returned Server runs
// until Close. The trusted material — keys, design, planner — never
// crosses this boundary: sessions execute RemoteSQL over ciphertexts and
// stream encrypted batches back, exactly as the in-process path does.
func (s *System) Serve(addr string, cfg ServeConfig) (*Server, error) {
	if s.client.Srv == nil {
		return nil, fmt.Errorf("monomi: this System is itself a remote connection; Serve needs the deployment that holds the data")
	}
	return transport.Listen(s.client.Srv, addr, cfg)
}

// ConnectRemote dials a monomi-server and returns a System whose queries
// execute their RemoteSQL over the socket. Planning, decryption, and
// residual local execution stay on this (trusted) side; the remote server
// must host a database encrypted under the same master key, schema, and
// workload — which is what this System was built from, so its keys and
// design metadata carry over. Close the returned System when done.
func (s *System) ConnectRemote(addr string) (*System, error) {
	conn, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return s.remoteSystem(conn), nil
}

// ConnectRemoteTLS is ConnectRemote over TLS; cfg must trust the server's
// certificate.
func (s *System) ConnectRemoteTLS(addr string, cfg *tls.Config) (*System, error) {
	conn, err := transport.DialTLS(addr, cfg)
	if err != nil {
		return nil, err
	}
	return s.remoteSystem(conn), nil
}

func (s *System) remoteSystem(conn *transport.Conn) *System {
	cl := client.NewRemote(s.keys, conn, s.encDB.Meta, s.client.Ctx, s.net)
	cl.Greedy = s.client.Greedy
	cl.Parallelism = s.client.Parallelism
	cl.BatchSize = s.client.BatchSize
	cl.StreamWire = s.client.StreamWire
	return &System{
		db: s.db, keys: s.keys, design: s.design, encDB: s.encDB,
		client: cl, plain: s.plain, net: s.net, conn: conn,
	}
}

// Close releases the System's resources: cached plans (and their remote
// prepared-statement handles), the Paillier randomness pool workers (if
// Options.PaillierPool enabled them — only on the System that Encrypt
// returned, since remote Systems share its key store), and the network
// session, if any.
func (s *System) Close() error {
	s.client.Close()
	if s.ownsKeys {
		s.keys.Close()
		// The encrypted catalog may hold disk-backed tables; flush their
		// segment metadata and release the file handles.
		if s.encDB != nil {
			s.encDB.Cat.Close()
		}
	}
	if s.conn != nil {
		return s.conn.Close()
	}
	return nil
}

// IsRejected reports whether err is a server admission-control rejection
// (connection cap or in-flight query cap) — retryable, unlike a query
// error.
func IsRejected(err error) bool { return transport.IsRejected(err) }

// Rows is a plaintext query result.
type Rows struct {
	Cols []string
	Data [][]any

	// Timing breakdown (simulated server/network, measured client).
	ServerTime   float64 // seconds
	TransferTime float64
	ClientTime   float64
	// TimeToFirstRow is when the first decrypted row of the first remote
	// result was available at the client, in seconds. On the streamed wire
	// it is O(batch); on the materialized wire the whole result (server
	// scan + transfer + decode) precedes it.
	TimeToFirstRow float64
	WireBytes      int64
	PlanText       string
	// PlanCacheHit reports that this execution reused a cached plan
	// template (rebinding only the parameters) instead of planning from
	// scratch.
	PlanCacheHit bool
}

// Total returns the end-to-end simulated latency in seconds.
func (r *Rows) Total() float64 { return r.ServerTime + r.TransferTime + r.ClientTime }

// Query executes SQL through the encrypted split-execution path.
func (s *System) Query(sql string) (*Rows, error) {
	res, err := s.client.Query(sql, nil)
	if err != nil {
		return nil, err
	}
	return rowsFromResult(res), nil
}

func rowsFromResult(res *client.Result) *Rows {
	out := &Rows{
		Cols:           res.Cols,
		ServerTime:     res.ServerTime.Seconds(),
		TransferTime:   res.TransferTime.Seconds(),
		ClientTime:     res.ClientTime.Seconds(),
		TimeToFirstRow: res.TimeToFirstRow.Seconds(),
		WireBytes:      res.WireBytes,
		PlanText:       res.Plan.Describe(),
		PlanCacheHit:   res.PlanCacheHit,
	}
	for _, row := range res.Rows {
		vals := make([]any, len(row))
		for i, v := range row {
			vals[i] = fromValue(v)
		}
		out.Data = append(out.Data, vals)
	}
	return out
}

// Stmt is a prepared statement bound to a System: parse once, execute many
// times with different parameter values. Repeated executions of the same
// parameter-kind combination reuse a cached plan template (only the
// parameters are re-encrypted), and on a remote System the RemoteSQL is
// registered server-side once and re-executed by statement id.
type Stmt struct {
	st *client.Stmt
}

// Prepare parses a SQL query for repeated execution. Parameters appear in
// the SQL as :name placeholders.
func (s *System) Prepare(sql string) (*Stmt, error) {
	st, err := s.client.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{st: st}, nil
}

// Query executes the statement with one set of parameter values. Values
// may be int, int64, float64, string, bool, []byte, or nil (NULL); use
// DateParam for date-typed parameters.
func (st *Stmt) Query(params map[string]any) (*Rows, error) {
	vals := make(map[string]value.Value, len(params))
	for name, v := range params {
		cv, err := paramValue(v)
		if err != nil {
			return nil, fmt.Errorf("monomi: parameter %s: %w", name, err)
		}
		vals[name] = cv
	}
	res, err := st.st.Execute(vals)
	if err != nil {
		return nil, err
	}
	return rowsFromResult(res), nil
}

// SQL returns the statement's source text.
func (st *Stmt) SQL() string { return st.st.SQL() }

// Close releases the statement.
func (st *Stmt) Close() error { return st.st.Close() }

// DateParam converts a "YYYY-MM-DD" string into a date-typed parameter
// value for Stmt.Query.
func DateParam(s string) (any, error) {
	d, err := value.ParseDate(s)
	if err != nil {
		return nil, err
	}
	return value.NewDate(d), nil
}

// paramValue converts a Go value into a query parameter.
func paramValue(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.NewNull(), nil
	case value.Value:
		return x, nil
	case bool:
		return value.NewBool(x), nil
	case int:
		return value.NewInt(int64(x)), nil
	case int64:
		return value.NewInt(x), nil
	case float64:
		return value.NewFloat(x), nil
	case string:
		return value.NewStr(x), nil
	case []byte:
		return value.NewBytes(x), nil
	}
	return value.Value{}, fmt.Errorf("unsupported parameter type %T", v)
}

// PlanCacheStats reports the client plan cache's counters.
type PlanCacheStats struct {
	Hits      int64 // executions that reused a cached template
	Misses    int64 // executions that planned from scratch
	Evictions int64 // entries dropped under capacity pressure
	Size      int   // entries currently cached
}

// PlanCacheStats returns the trusted client's plan-cache counters.
func (s *System) PlanCacheStats() PlanCacheStats {
	st := s.client.PlanCacheStats()
	return PlanCacheStats{Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions, Size: st.Size}
}

// ResetPlanCache drops every cached plan and parsed query, forcing
// subsequent executions to plan from scratch (counters are kept).
// Benchmarks use it to compare cold planning against the warm fast path.
func (s *System) ResetPlanCache() { s.client.ResetPlanCache() }

// Stats reports the untrusted server's cumulative access-path and storage
// counters.
type Stats struct {
	// IndexLookups counts secondary-index probes over the System's
	// lifetime: point lookups, range scans, IN elements, ordered
	// emissions, and hash-join builds served from an index.
	IndexLookups int64
	// RowsSkippedByIndex counts rows those probes avoided reading
	// compared to full scans of the same tables.
	RowsSkippedByIndex int64
	// EncBytes is the resident encrypted heap footprint after ciphertext
	// dictionary interning; EncRawBytes is what it would be with every
	// ciphertext stored inline. EncRawBytes/EncBytes > 1 is the interning
	// saving (DET ciphertexts of repeated plaintexts are identical, so
	// low-cardinality columns intern well).
	EncBytes    int64
	EncRawBytes int64
	// PageReads / CacheHits / CacheMisses / PageBytesRead are the disk
	// backend's cumulative physical-read counters across the encrypted
	// tables (all zero on the in-memory backend): pages read from disk,
	// block-cache lookups served without a read, lookups that went to
	// disk, and the physical bytes those reads moved.
	PageReads     int64
	CacheHits     int64
	CacheMisses   int64
	PageBytesRead int64
}

// CacheHitRate is the disk backend's block-cache hit fraction (1 when no
// page lookups happened, e.g. on the in-memory backend).
func (st Stats) CacheHitRate() float64 {
	io := storage.IOStats{CacheHits: st.CacheHits, CacheMisses: st.CacheMisses}
	return io.HitRate()
}

// InternRatio is the dictionary-interning space saving: raw over resident
// bytes (1 = nothing interned).
func (st Stats) InternRatio() float64 {
	if st.EncBytes == 0 {
		return 1
	}
	return float64(st.EncRawBytes) / float64(st.EncBytes)
}

// Stats returns the server-side counters. On a remote System the engine
// counters are zero — they live in the remote process — but the storage
// footprint (shared metadata) is still reported.
func (s *System) Stats() Stats {
	st := Stats{
		EncBytes:    s.encDB.Cat.TotalBytes(),
		EncRawBytes: s.encDB.Cat.TotalRawBytes(),
	}
	io := s.encDB.Cat.IO()
	st.PageReads, st.CacheHits = io.PageReads, io.CacheHits
	st.CacheMisses, st.PageBytesRead = io.CacheMisses, io.BytesRead
	if s.client.Srv != nil {
		st.IndexLookups, st.RowsSkippedByIndex = s.client.Srv.Engine.IndexStats()
	}
	return st
}

// QueryPlaintext executes SQL directly on the plaintext database (the
// unencrypted baseline used for comparisons).
func (s *System) QueryPlaintext(sql string) (*Rows, error) {
	q, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	res, err := s.plain.Execute(q, nil)
	if err != nil {
		return nil, err
	}
	out := &Rows{
		Cols:       res.Cols,
		ServerTime: s.net.ScanTime(res.Stats.BytesScanned).Seconds() + s.net.RowTime(res.Stats.RowsScanned).Seconds(),
	}
	out.TransferTime = s.net.TransferTime(res.Bytes()).Seconds()
	for _, row := range res.Rows {
		vals := make([]any, len(row))
		for i, v := range row {
			vals[i] = fromValue(v)
		}
		out.Data = append(out.Data, vals)
	}
	return out, nil
}

// SchemeCensus describes one column's encryption in the design.
type SchemeCensus struct {
	Table      string
	Expr       string // column name or precomputed expression
	Scheme     string // RND | HOM | SEARCH | DET | OPE
	Precompute bool
}

// Design returns the chosen physical design for inspection (the security
// report of §8.7 derives from this).
func (s *System) Design() []SchemeCensus {
	var out []SchemeCensus
	for _, it := range s.design.Design.Items {
		out = append(out, SchemeCensus{
			Table:      it.Table,
			Expr:       it.ExprSQL(),
			Scheme:     it.Scheme.String(),
			Precompute: it.IsPrecomputed(),
		})
	}
	return out
}

// DesignStats reports the designer's ILP size and estimated footprint.
func (s *System) DesignStats() (vars, constraints int, plainBytes, encBytes int64) {
	return s.design.Vars, s.design.Constraints,
		s.db.cat.TotalBytes(), s.encDB.TotalBytes()
}

// --- conversions ---

func colType(t ColType) storage.ColType {
	switch t {
	case Int:
		return storage.TInt
	case Float:
		return storage.TFloat
	case String:
		return storage.TStr
	case Date:
		return storage.TDate
	}
	return storage.TInt
}

func toValue(t storage.ColType, v any) (value.Value, error) {
	if v == nil {
		return value.NewNull(), nil
	}
	switch t {
	case storage.TInt:
		switch x := v.(type) {
		case int:
			return value.NewInt(int64(x)), nil
		case int64:
			return value.NewInt(x), nil
		}
	case storage.TFloat:
		switch x := v.(type) {
		case float64:
			return value.NewFloat(x), nil
		case int:
			return value.NewFloat(float64(x)), nil
		}
	case storage.TStr:
		if x, ok := v.(string); ok {
			return value.NewStr(x), nil
		}
	case storage.TDate:
		if x, ok := v.(string); ok {
			d, err := value.ParseDate(x)
			if err != nil {
				return value.Value{}, err
			}
			return value.NewDate(d), nil
		}
	}
	return value.Value{}, fmt.Errorf("cannot convert %T to %v", v, t)
}

func fromValue(v value.Value) any {
	switch v.K {
	case value.Null:
		return nil
	case value.Int, value.Bool:
		return v.I
	case value.Float:
		return v.F
	case value.Str:
		return v.S
	case value.Date:
		return value.FormatDate(v.I)
	case value.Bytes:
		return v.B
	}
	return nil
}
