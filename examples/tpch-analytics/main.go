// tpch-analytics: run a selection of TPC-H queries over an encrypted
// warehouse and compare against the plaintext baseline — the core scenario
// of the paper's evaluation (§8.2).
package main

import (
	"flag"
	"fmt"
	"log"

	monomi "repro"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor (1.0 = 6M lineitem rows)")
	bits := flag.Int("paillier", 512, "Paillier modulus bits (paper: 1024)")
	flag.Parse()

	fmt.Printf("Generating TPC-H at SF %g...\n", *sf)
	db, err := monomi.TPCH(*sf, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Hand the full supported workload to the designer, as in §8.2.
	workload := monomi.Workload{}
	for _, qn := range monomi.TPCHQueries() {
		q, _ := monomi.TPCHQuery(qn)
		workload[fmt.Sprintf("Q%02d", qn)] = q
	}
	opts := monomi.DefaultOptions()
	opts.PaillierBits = *bits
	fmt.Println("Running designer (ILP, S=2) and encrypting...")
	sys, err := monomi.Encrypt(db, workload, opts)
	if err != nil {
		log.Fatal(err)
	}
	vars, cons, plain, encBytes := sys.DesignStats()
	fmt.Printf("Designer ILP: %d variables, %d constraints; space %.2fx plaintext\n\n",
		vars, cons, float64(encBytes)/float64(plain))

	fmt.Printf("%-5s %12s %12s %9s   breakdown (server/net/client)\n",
		"query", "plaintext", "encrypted", "slowdown")
	for _, qn := range []int{1, 3, 5, 6, 11, 12, 14, 18, 19} {
		sql, _ := monomi.TPCHQuery(qn)
		p, err := sys.QueryPlaintext(sql)
		if err != nil {
			log.Fatalf("Q%d plaintext: %v", qn, err)
		}
		e, err := sys.Query(sql)
		if err != nil {
			log.Fatalf("Q%d encrypted: %v", qn, err)
		}
		fmt.Printf("Q%-4d %11.3fs %11.3fs %8.2fx   %.3f/%.3f/%.3f\n",
			qn, p.Total(), e.Total(), e.Total()/p.Total(),
			e.ServerTime, e.TransferTime, e.ClientTime)
	}
	fmt.Println("\n(The per-query shapes mirror Figure 4; absolute times depend on the simulated disk/link.)")
}
