// Quickstart: build a tiny plaintext database, let the designer choose an
// encrypted physical design for a two-query workload, encrypt, and run an
// analytical query end to end through split client/server execution.
package main

import (
	"fmt"
	"log"

	monomi "repro"
)

func main() {
	// 1. Plaintext database (trusted side).
	db := monomi.NewDatabase()
	db.MustCreateTable("orders",
		monomi.Col("o_id", monomi.Int),
		monomi.Col("o_cust", monomi.String),
		monomi.Col("o_total", monomi.Int),
		monomi.Col("o_date", monomi.Date))
	seed := []struct {
		id    int
		cust  string
		total int
		date  string
	}{
		{1, "alice", 120, "1995-01-15"}, {2, "bob", 80, "1995-06-01"},
		{3, "alice", 300, "1996-02-20"}, {4, "carol", 50, "1996-07-04"},
		{5, "bob", 220, "1996-09-12"}, {6, "alice", 90, "1997-03-01"},
	}
	for _, r := range seed {
		db.MustInsert("orders", r.id, r.cust, r.total, r.date)
	}

	// 2. Designer: the workload tells it which operations must run on the
	// untrusted server (equality/grouping -> DET, ranges -> OPE, sums ->
	// Paillier), so it materializes exactly those encrypted columns.
	opts := monomi.DefaultOptions()
	opts.PaillierBits = 512 // quick demo; the paper uses 1024
	opts.Parallelism = 0    // sharded execution across all cores (1 = sequential)
	opts.BatchSize = 1024   // stream scans batch-at-a-time (0 = materialized)
	sys, err := monomi.Encrypt(db, monomi.Workload{
		"customer-totals": "SELECT o_cust, SUM(o_total) FROM orders GROUP BY o_cust",
		"big-orders":      "SELECT o_id FROM orders WHERE o_total > 100",
	}, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Chosen physical design:")
	for _, c := range sys.Design() {
		pre := ""
		if c.Precompute {
			pre = " (precomputed)"
		}
		fmt.Printf("  %-8s %-30s %s%s\n", c.Table, c.Expr, c.Scheme, pre)
	}
	_, _, plain, encBytes := sys.DesignStats()
	fmt.Printf("Space: plaintext %d B -> encrypted %d B (%.2fx)\n\n",
		plain, encBytes, float64(encBytes)/float64(plain))

	// 3. Query over ciphertext. The plan shows the split: RemoteSQL runs
	// on the untrusted server, Local operators on the trusted client.
	sql := `SELECT o_cust, SUM(o_total) AS total FROM orders
	        WHERE o_date >= date '1995-06-01' GROUP BY o_cust
	        HAVING SUM(o_total) > 100 ORDER BY total DESC`
	rows, err := sys.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Split execution plan:")
	fmt.Println(rows.PlanText)
	fmt.Println("Results:")
	for _, r := range rows.Data {
		fmt.Printf("  %-8v %v\n", r[0], r[1])
	}
	fmt.Printf("\nSimulated latency: server %.3fs + network %.3fs + client %.3fs (wire %d B)\n",
		rows.ServerTime, rows.TransferTime, rows.ClientTime, rows.WireBytes)

	// Sanity: identical to the plaintext baseline.
	plainRows, err := sys.QueryPlaintext(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Plaintext baseline returns %d identical rows.\n", len(plainRows.Data))
}
