// security-audit: inspect what an adversary holding the encrypted server
// image would see — the §8.7 analysis. For each table, count columns by
// their weakest encryption scheme and spell out the leakage of each scheme
// (Table 1 of the paper).
package main

import (
	"fmt"
	"log"
	"sort"

	monomi "repro"
)

var leakage = map[string]string{
	"RND":    "nothing (randomized AES-CTR)",
	"HOM":    "nothing (Paillier ciphertexts)",
	"SEARCH": "which rows match each queried keyword",
	"DET":    "duplicates (equal plaintexts look equal)",
	"OPE":    "order, and partial plaintext information",
}

func main() {
	db, err := monomi.TPCH(0.002, 1)
	if err != nil {
		log.Fatal(err)
	}
	workload := monomi.Workload{}
	for _, qn := range monomi.TPCHQueries() {
		q, _ := monomi.TPCHQuery(qn)
		workload[fmt.Sprintf("Q%02d", qn)] = q
	}
	opts := monomi.DefaultOptions()
	opts.PaillierBits = 512
	sys, err := monomi.Encrypt(db, workload, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Rank: lower = stronger. A column's security is its weakest copy.
	rank := map[string]int{"RND": 0, "HOM": 0, "SEARCH": 0, "DET": 1, "OPE": 2}
	type colKey struct{ table, expr string }
	weakest := map[colKey]string{}
	precomp := map[colKey]bool{}
	for _, c := range sys.Design() {
		k := colKey{c.Table, c.Expr}
		if cur, ok := weakest[k]; !ok || rank[c.Scheme] > rank[cur] {
			weakest[k] = c.Scheme
		}
		if c.Precompute {
			precomp[k] = true
		}
	}

	perTable := map[string]map[string]int{}
	opeColumns := []string{}
	for k, scheme := range weakest {
		bucket := "RND/HOM/SEARCH"
		if scheme == "DET" {
			bucket = "DET"
		}
		if scheme == "OPE" {
			bucket = "OPE"
			opeColumns = append(opeColumns, k.table+"."+k.expr)
		}
		m := perTable[k.table]
		if m == nil {
			m = map[string]int{}
			perTable[k.table] = m
		}
		m[bucket]++
	}

	fmt.Println("Security census (Table 3): columns by weakest scheme")
	fmt.Printf("%-10s %16s %6s %6s\n", "table", "RND/HOM/SEARCH", "DET", "OPE")
	var tables []string
	for t := range perTable {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		m := perTable[t]
		fmt.Printf("%-10s %16d %6d %6d\n", t, m["RND/HOM/SEARCH"], m["DET"], m["OPE"])
	}

	fmt.Println("\nWhat each scheme reveals to a compromised server (Table 1):")
	for _, s := range []string{"RND", "HOM", "SEARCH", "DET", "OPE"} {
		fmt.Printf("  %-7s %s\n", s, leakage[s])
	}

	sort.Strings(opeColumns)
	fmt.Println("\nOPE (the weakest scheme) is confined to:")
	for _, c := range opeColumns {
		fmt.Printf("  %s\n", c)
	}
	fmt.Println("\nNo plaintext is ever stored on the server; an administrator can veto")
	fmt.Println("OPE on sensitive columns and the planner will fall back to client-side")
	fmt.Println("filtering for those predicates (§3, §9).")
}
