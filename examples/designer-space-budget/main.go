// designer-space-budget: show how the ILP designer (§6.5) trades query
// performance for server space, reproducing the Figure 9 scenario: shrink
// the budget from S=2 to S=1.4 and watch which encrypted columns the
// designer sacrifices — and how much better its choices are than the
// Space-Greedy heuristic's.
package main

import (
	"fmt"
	"log"

	monomi "repro"
)

func buildSystem(budget float64, greedy bool) (*monomi.System, error) {
	db, err := monomi.TPCH(0.002, 1)
	if err != nil {
		return nil, err
	}
	workload := monomi.Workload{}
	for _, qn := range monomi.TPCHQueries() {
		q, _ := monomi.TPCHQuery(qn)
		workload[fmt.Sprintf("Q%02d", qn)] = q
	}
	opts := monomi.DefaultOptions()
	opts.PaillierBits = 512
	opts.SpaceBudget = budget
	opts.SpaceGreedy = greedy
	return monomi.Encrypt(db, workload, opts)
}

func censusByScheme(sys *monomi.System) map[string]int {
	out := map[string]int{}
	for _, c := range sys.Design() {
		out[c.Scheme]++
	}
	return out
}

func main() {
	queries := []int{1, 6, 14, 18} // the paper's budget-sensitive queries

	configs := []struct {
		name   string
		budget float64
		greedy bool
	}{
		{"S=2.0 (ILP)", 2.0, false},
		{"S=1.4 Space-Greedy", 1.4, true},
		{"S=1.4 MONOMI ILP", 1.4, false},
	}
	fmt.Printf("%-20s %10s %28s %s\n", "config", "space", "schemes", "query times")
	for _, cfg := range configs {
		sys, err := buildSystem(cfg.budget, cfg.greedy)
		if err != nil {
			log.Fatalf("%s: %v", cfg.name, err)
		}
		_, _, plain, encBytes := sys.DesignStats()
		census := censusByScheme(sys)
		times := ""
		for _, qn := range queries {
			sql, _ := monomi.TPCHQuery(qn)
			r, err := sys.Query(sql)
			if err != nil {
				log.Fatalf("%s Q%d: %v", cfg.name, qn, err)
			}
			times += fmt.Sprintf("Q%d=%.2fs ", qn, r.Total())
		}
		fmt.Printf("%-20s %9.2fx  DET=%d OPE=%d HOM=%d SEARCH=%d RND=%d  %s\n",
			cfg.name, float64(encBytes)/float64(plain),
			census["DET"], census["OPE"], census["HOM"], census["SEARCH"], census["RND"], times)
	}
	fmt.Println("\nUnder the tighter budget the ILP drops the columns that hurt least;")
	fmt.Println("Space-Greedy just deletes the largest, slowing the queries that needed them (§8.6).")
}
