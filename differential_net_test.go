package monomi

// Network differential: the same plaintext-vs-encrypted grid as
// differential_test.go, but with the encrypted path executing its
// RemoteSQL over real loopback TCP (System.Serve + System.ConnectRemote).
// Two properties are pinned at every ⟨parallelism, batch size, wire mode⟩
// point:
//
//   - rows: the remote encrypted result equals the plaintext engine's
//     result (and therefore the in-process encrypted result);
//   - frames: with the streamed wire, the bytes the remote client feeds
//     its decrypt pipeline — the concatenated transport data-frame
//     payloads — are byte-identical to the in-process stream, query by
//     query. The transport carries the wire.Batch* framing verbatim; this
//     is the check that keeps it honest.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/value"
)

// recordingExec interposes on a client's Executor and keeps a copy of
// every result stream it carries.
type recordingExec struct {
	inner  client.Executor
	frames [][]byte
}

func (r *recordingExec) Execute(q *ast.Query, params map[string]value.Value) (*server.Response, error) {
	return r.inner.Execute(q, params)
}

func (r *recordingExec) ExecuteStream(q *ast.Query, params map[string]value.Value, w io.Writer) (*server.StreamStats, error) {
	var buf bytes.Buffer
	st, err := r.inner.ExecuteStream(q, params, io.MultiWriter(w, &buf))
	r.frames = append(r.frames, buf.Bytes())
	return st, err
}

func (r *recordingExec) reset() { r.frames = nil }

// netShapes covers every producer shape the stream can take: plain scan,
// DISTINCT, GROUP BY (incl. Paillier aggregation), join probe, and
// ORDER BY … LIMIT.
var netShapes = []string{
	"SELECT s_id, s_price FROM sales WHERE s_price >= 300",
	"SELECT DISTINCT s_cat FROM sales WHERE s_qty < 40",
	"SELECT s_cat, SUM(s_price), COUNT(*) FROM sales GROUP BY s_cat",
	"SELECT s_cat, SUM(s_qty) FROM sales WHERE s_price >= 200 GROUP BY s_cat",
	"SELECT s_id, c_region, c_tier FROM sales, cats WHERE s_cat = c_name AND s_qty < 30",
	"SELECT s_id, s_price FROM sales WHERE s_qty < 45 ORDER BY s_price DESC, s_id LIMIT 23",
}

func TestNetworkDifferential(t *testing.T) {
	sys := diffSystem(t)
	srv, err := sys.Serve("127.0.0.1:0", ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote, err := sys.ConnectRemote(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// Interpose stream recorders on both deployments. The remote client's
	// recorder sees exactly the concatenated data-frame payloads its
	// transport connection delivered.
	recLocal := &recordingExec{inner: sys.client.Executor()}
	sys.client.SetExecutor(recLocal)
	recRemote := &recordingExec{inner: remote.client.Executor()}
	remote.client.SetExecutor(recRemote)

	for _, par := range []int{1, 2, 4} {
		sys.SetParallelism(par) // server + in-process client
		remote.SetParallelism(par)
		for _, bs := range diffBatchSizes {
			sys.SetBatchSize(bs)
			remote.SetBatchSize(bs)
			for _, sw := range diffStreamWire {
				sys.SetStreamWire(sw)
				remote.SetStreamWire(sw)
				for _, sql := range netShapes {
					plain, err := sys.QueryPlaintext(sql)
					if err != nil {
						t.Fatalf("p=%d bs=%d sw=%v plaintext %s: %v", par, bs, sw, sql, err)
					}
					recLocal.reset()
					local, err := sys.Query(sql)
					if err != nil {
						t.Fatalf("p=%d bs=%d sw=%v in-process %s: %v", par, bs, sw, sql, err)
					}
					recRemote.reset()
					res, err := remote.Query(sql)
					if err != nil {
						t.Fatalf("p=%d bs=%d sw=%v remote %s: %v", par, bs, sw, sql, err)
					}

					// Rows: remote == plaintext (order asserted only where
					// the query imposes one; the streamed shapes pin order
					// anyway via the in-process comparison below).
					ordered := strings.Contains(sql, "ORDER BY")
					want := canonicalRows(t, plain.Data, ordered)
					got := canonicalRows(t, res.Data, ordered)
					if strings.Join(got, "\n") != strings.Join(want, "\n") {
						t.Errorf("p=%d bs=%d sw=%v %s: remote result diverges from plaintext\n%v\nvs\n%v",
							par, bs, sw, sql, got, want)
					}
					// Rows: remote == in-process encrypted, order verbatim.
					inproc := canonicalRows(t, local.Data, true)
					verbatim := canonicalRows(t, res.Data, true)
					if strings.Join(verbatim, "\n") != strings.Join(inproc, "\n") {
						t.Errorf("p=%d bs=%d sw=%v %s: remote result diverges from in-process",
							par, bs, sw, sql)
					}

					// Frames: streamed wire only (the materialized wire has
					// no in-process frames to compare against).
					if !sw {
						continue
					}
					if len(recRemote.frames) != len(recLocal.frames) {
						t.Errorf("p=%d bs=%d sw=%v %s: %d remote streams vs %d in-process",
							par, bs, sw, sql, len(recRemote.frames), len(recLocal.frames))
						continue
					}
					for i := range recLocal.frames {
						if !bytes.Equal(recRemote.frames[i], recLocal.frames[i]) {
							t.Errorf("p=%d bs=%d sw=%v %s: stream %d differs over the wire (%d vs %d bytes)",
								par, bs, sw, sql, i, len(recRemote.frames[i]), len(recLocal.frames[i]))
						}
					}
				}
			}
		}
	}
}

// TestNetworkConcurrentClients runs the encrypted mixed-shape workload
// from several remote trusted clients at once against one served
// deployment (run with -race): results must match the plaintext engine
// for every client, and the server must account one session per client.
func TestNetworkConcurrentClients(t *testing.T) {
	sys := diffSystem(t)
	sys.SetParallelism(2)
	sys.SetBatchSize(64)
	sys.SetStreamWire(true)
	srv, err := sys.Serve("127.0.0.1:0", ServeConfig{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	want := make([][]string, len(netShapes))
	for i, sql := range netShapes {
		plain, err := sys.QueryPlaintext(sql)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = canonicalRows(t, plain.Data, strings.Contains(sql, "ORDER BY"))
	}

	const clients = 4
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		remote, err := sys.ConnectRemote(srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer remote.Close()
		wg.Add(1)
		go func(id int, remote *System) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, sql := range netShapes {
					res, err := remote.Query(sql)
					if err != nil {
						errs <- fmt.Errorf("client %d: %s: %w", id, sql, err)
						return
					}
					got := canonicalRows(t, res.Data, strings.Contains(sql, "ORDER BY"))
					if strings.Join(got, "\n") != strings.Join(want[i], "\n") {
						errs <- fmt.Errorf("client %d: %s: result diverges from plaintext", id, sql)
						return
					}
				}
			}
		}(c, remote)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := srv.Stats().Accepted; got != clients {
		t.Fatalf("server accepted %d sessions, want %d", got, clients)
	}
}
