package monomi

import (
	"fmt"
	"strings"
	"testing"
)

// Differential test for the repeated-query fast path: the same
// parameterized shapes executed over and over with different values —
// prepared statements and ad-hoc SQL, warm plan cache and cold — must stay
// byte-identical to the plaintext engine at every
// ⟨parallelism, batch size, wire⟩ combination, in-process and over the
// transport (where warm prepared executions additionally run server-side
// registered statements by id instead of re-shipping SQL).

// repShape is a parameterized query plus its ad-hoc textual form and the
// i-th parameter binding.
type repShape struct {
	sql     string             // parameterized (prepared-statement) form
	adhoc   func(i int) string // same query with the i-th literals inline
	params  func(i int) map[string]any
	ordered bool
}

func repShapes(t *testing.T) []repShape {
	t.Helper()
	dateOf := func(i int) string { return fmt.Sprintf("199%d-06-15", 5+i%4) }
	dp := func(i int) any {
		v, err := DateParam(dateOf(i))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	cats := []string{"ale", "bock", "cider", "dubbel"}
	return []repShape{
		{
			sql: "SELECT s_id, s_price FROM sales WHERE s_price >= :lo ORDER BY s_id",
			adhoc: func(i int) string {
				return fmt.Sprintf("SELECT s_id, s_price FROM sales WHERE s_price >= %d ORDER BY s_id", 200*(i%4))
			},
			params:  func(i int) map[string]any { return map[string]any{"lo": 200 * (i % 4)} },
			ordered: true,
		},
		{
			sql: "SELECT s_cat, SUM(s_price), COUNT(*) FROM sales WHERE s_qty < :q GROUP BY s_cat ORDER BY s_cat",
			adhoc: func(i int) string {
				return fmt.Sprintf("SELECT s_cat, SUM(s_price), COUNT(*) FROM sales WHERE s_qty < %d GROUP BY s_cat ORDER BY s_cat", 10+10*(i%4))
			},
			params:  func(i int) map[string]any { return map[string]any{"q": 10 + 10*(i%4)} },
			ordered: true,
		},
		{
			sql: "SELECT COUNT(*) FROM sales WHERE s_cat = :c",
			adhoc: func(i int) string {
				return fmt.Sprintf("SELECT COUNT(*) FROM sales WHERE s_cat = '%s'", cats[i%len(cats)])
			},
			params:  func(i int) map[string]any { return map[string]any{"c": cats[i%len(cats)]} },
			ordered: false,
		},
		{
			sql: "SELECT SUM(s_price) FROM sales WHERE s_date < :d",
			adhoc: func(i int) string {
				return fmt.Sprintf("SELECT SUM(s_price) FROM sales WHERE s_date < date '%s'", dateOf(i))
			},
			params:  func(i int) map[string]any { return map[string]any{"d": dp(i)} },
			ordered: false,
		},
	}
}

// TestDifferentialRepeatedQueries sweeps the fast-path grid: for each mode
// and deployment, each shape runs once cold (plan cache reset) and then
// repeatedly warm with varying parameters, prepared and ad-hoc, every
// execution compared against the plaintext engine. Warm executions must
// report a plan-cache hit; cold ones must not.
func TestDifferentialRepeatedQueries(t *testing.T) {
	sys := diffSystem(t)
	defer sys.Close()
	srv, err := sys.Serve("127.0.0.1:0", ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rem, err := sys.ConnectRemote(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	shapes := repShapes(t)
	const reps = 3
	for _, par := range []int{1, 2, 4} {
		sys.SetParallelism(par)
		rem.SetParallelism(par)
		for _, bs := range diffBatchSizes {
			sys.SetBatchSize(bs)
			rem.SetBatchSize(bs)
			for _, sw := range diffStreamWire {
				sys.SetStreamWire(sw)
				rem.SetStreamWire(sw)
				for _, d := range []struct {
					name string
					s    *System
				}{{"inproc", sys}, {"wire", rem}} {
					for si, sh := range shapes {
						tag := fmt.Sprintf("p=%d bs=%d sw=%v %s shape=%d", par, bs, sw, d.name, si)
						stmt, err := d.s.Prepare(sh.sql)
						if err != nil {
							t.Fatalf("%s prepare: %v", tag, err)
						}
						d.s.ResetPlanCache()
						var coldRows []string
						for i := 0; i < reps; i++ {
							plain, err := sys.QueryPlaintext(sh.adhoc(i))
							if err != nil {
								t.Fatalf("%s plaintext i=%d: %v", tag, i, err)
							}
							want := canonicalRows(t, plain.Data, sh.ordered)

							prep, err := stmt.Query(sh.params(i))
							if err != nil {
								t.Fatalf("%s prepared i=%d: %v", tag, i, err)
							}
							got := canonicalRows(t, prep.Data, sh.ordered)
							if strings.Join(got, "\n") != strings.Join(want, "\n") {
								t.Fatalf("%s prepared i=%d diverges from plaintext:\n%v\nvs\n%v", tag, i, got, want)
							}
							if i == 0 {
								coldRows = got
								if prep.PlanCacheHit {
									t.Errorf("%s: cold execution reported a plan-cache hit", tag)
								}
							} else if !prep.PlanCacheHit {
								t.Errorf("%s i=%d: warm prepared execution missed the plan cache", tag, i)
							}

							adhoc, err := d.s.Query(sh.adhoc(i))
							if err != nil {
								t.Fatalf("%s adhoc i=%d: %v", tag, i, err)
							}
							got = canonicalRows(t, adhoc.Data, sh.ordered)
							if strings.Join(got, "\n") != strings.Join(want, "\n") {
								t.Fatalf("%s adhoc i=%d diverges from plaintext:\n%v\nvs\n%v", tag, i, got, want)
							}
						}
						// The uncached path must agree with the warm one:
						// re-run binding 0 cold and compare to the cached
						// execution's rows.
						d.s.ResetPlanCache()
						again, err := stmt.Query(sh.params(0))
						if err != nil {
							t.Fatalf("%s cold rerun: %v", tag, err)
						}
						got := canonicalRows(t, again.Data, sh.ordered)
						if strings.Join(got, "\n") != strings.Join(coldRows, "\n") {
							t.Fatalf("%s: cold rerun diverges from first execution:\n%v\nvs\n%v", tag, got, coldRows)
						}
						stmt.Close()
					}
				}
			}
		}
	}
}

// TestRepeatedQueryPaillierPool runs the repeated grid's HOM-heavy shape on
// a pooled System and checks results and plan-cache accounting: pooled
// randomness must not change any decrypted value (ciphertexts stay
// byte-compatible), and the stats counters must add up.
func TestRepeatedQueryPaillierPool(t *testing.T) {
	db := NewDatabase()
	db.MustCreateTable("ev", Col("e_id", Int), Col("e_grp", Int), Col("e_val", Int))
	for i := 0; i < 150; i++ {
		db.MustInsert("ev", i, i%7, i%53)
	}
	opts := DefaultOptions()
	opts.PaillierBits = 256
	opts.SpaceBudget = 0
	opts.PaillierPool = true
	sys, err := Encrypt(db, Workload{
		"sum": "SELECT e_grp, SUM(e_val) FROM ev WHERE e_val < 40 GROUP BY e_grp",
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	stmt, err := sys.Prepare("SELECT e_grp, SUM(e_val), COUNT(*) FROM ev WHERE e_val < :hi GROUP BY e_grp ORDER BY e_grp")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		hi := 10 + 10*i
		res, err := stmt.Query(map[string]any{"hi": hi})
		if err != nil {
			t.Fatalf("hi=%d: %v", hi, err)
		}
		plain, err := sys.QueryPlaintext(fmt.Sprintf(
			"SELECT e_grp, SUM(e_val), COUNT(*) FROM ev WHERE e_val < %d GROUP BY e_grp ORDER BY e_grp", hi))
		if err != nil {
			t.Fatal(err)
		}
		got := canonicalRows(t, res.Data, true)
		want := canonicalRows(t, plain.Data, true)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("hi=%d pooled result diverges from plaintext:\n%v\nvs\n%v", hi, got, want)
		}
	}
	st := sys.PlanCacheStats()
	if st.Hits < 3 {
		t.Errorf("expected >=3 plan-cache hits, got %+v", st)
	}
	if st.Misses < 1 {
		t.Errorf("expected >=1 plan-cache miss, got %+v", st)
	}
}
